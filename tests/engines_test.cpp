#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"
#include "rbc/engines.hpp"

namespace rbc {
namespace {

Bytes digest_of(const Seed256& s, hash::HashAlgo algo) {
  if (algo == hash::HashAlgo::kSha1) {
    const auto d = hash::sha1_seed(s);
    return Bytes(d.bytes.begin(), d.bytes.end());
  }
  const auto d = hash::sha3_256_seed(s);
  return Bytes(d.bytes.begin(), d.bytes.end());
}

EngineConfig small_cfg() {
  EngineConfig cfg;
  cfg.host_threads = 2;
  return cfg;
}

class BackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendTest, FindsSeedAndReportsModeledTime) {
  auto backend = make_backend(GetParam(), small_cfg());
  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(100);
  truth.flip_bit(7);

  SearchOptions opts;
  opts.max_distance = 2;
  const auto report = backend->search(
      base, digest_of(truth, hash::HashAlgo::kSha3_256),
      hash::HashAlgo::kSha3_256, opts);
  EXPECT_TRUE(report.result.found);
  EXPECT_EQ(report.result.distance, 2);
  EXPECT_EQ(report.result.seed, truth);
  EXPECT_GT(report.modeled_device_seconds, 0.0);
  EXPECT_FALSE(report.device_name.empty());
}

TEST_P(BackendTest, Sha1PathWorks) {
  auto backend = make_backend(GetParam(), small_cfg());
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(33);

  SearchOptions opts;
  opts.max_distance = 1;
  const auto report =
      backend->search(base, digest_of(truth, hash::HashAlgo::kSha1),
                      hash::HashAlgo::kSha1, opts);
  EXPECT_TRUE(report.result.found);
  EXPECT_EQ(report.result.distance, 1);
}

TEST_P(BackendTest, UnfindableSeedFails) {
  auto backend = make_backend(GetParam(), small_cfg());
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);

  SearchOptions opts;
  opts.max_distance = 1;
  const auto report = backend->search(
      base, digest_of(unrelated, hash::HashAlgo::kSha3_256),
      hash::HashAlgo::kSha3_256, opts);
  EXPECT_FALSE(report.result.found);
  EXPECT_EQ(report.result.seeds_hashed, 257u);
}

INSTANTIATE_TEST_SUITE_P(Devices, BackendTest,
                         ::testing::Values("cpu", "gpu", "apu", "gpu-emu"));

TEST(Backends, TimeoutHonouredOnGenericEngines) {
  // All generic (non-kernel) backends must respect the T budget.
  Xoshiro256 rng(41);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  SearchOptions opts;
  opts.max_distance = 3;
  opts.timeout_s = 0.0;
  for (const char* device : {"cpu", "gpu", "apu"}) {
    auto backend = make_backend(device, small_cfg());
    const auto report = backend->search(
        base, digest_of(unrelated, hash::HashAlgo::kSha3_256),
        hash::HashAlgo::kSha3_256, opts);
    EXPECT_FALSE(report.result.found) << device;
    EXPECT_TRUE(report.result.timed_out) << device;
  }
}

TEST(Backends, KernelBackendAgreesWithGenericGpuBackend) {
  Xoshiro256 rng(42);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(19);
  truth.flip_bit(240);
  SearchOptions opts;
  opts.max_distance = 2;
  const Bytes digest = digest_of(truth, hash::HashAlgo::kSha3_256);
  const auto generic = make_backend("gpu", small_cfg())
                           ->search(base, digest,
                                    hash::HashAlgo::kSha3_256, opts);
  const auto kernel = make_backend("gpu-emu", small_cfg())
                          ->search(base, digest,
                                   hash::HashAlgo::kSha3_256, opts);
  EXPECT_TRUE(generic.result.found);
  EXPECT_TRUE(kernel.result.found);
  EXPECT_EQ(generic.result.seed, kernel.result.seed);
  EXPECT_EQ(generic.result.distance, kernel.result.distance);
}

TEST(Backends, DigestLengthValidated) {
  auto backend = make_backend("cpu", small_cfg());
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  SearchOptions opts;
  const Bytes short_digest(20, 0);  // SHA-1 length
  EXPECT_THROW(backend->search(base, short_digest,
                               hash::HashAlgo::kSha3_256, opts),
               CheckFailure);
}

TEST(Backends, UnknownDeviceRejected) {
  EXPECT_THROW(make_backend("tpu"), CheckFailure);
}

TEST(Backends, NamesIdentifyDevices) {
  EXPECT_EQ(make_backend("cpu")->name(), "SALTED-CPU");
  EXPECT_EQ(make_backend("gpu")->name(), "SALTED-GPU");
  EXPECT_EQ(make_backend("apu")->name(), "SALTED-APU");
}

TEST(Backends, ModeledTimesPreserveDeviceOrdering) {
  // For the same SHA-3 search effort, the paper's platform ordering is
  // GPU < APU < CPU(64). The functional engines must project that ordering.
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(9);
  truth.flip_bit(200);  // unreachable at d=1 -> full 257-seed effort

  SearchOptions opts;
  opts.max_distance = 1;
  const Bytes digest = digest_of(truth, hash::HashAlgo::kSha3_256);

  const auto gpu = make_backend("gpu", small_cfg())
                       ->search(base, digest, hash::HashAlgo::kSha3_256, opts);
  const auto apu = make_backend("apu", small_cfg())
                       ->search(base, digest, hash::HashAlgo::kSha3_256, opts);
  const auto cpu = make_backend("cpu", small_cfg())
                       ->search(base, digest, hash::HashAlgo::kSha3_256, opts);
  EXPECT_EQ(gpu.result.seeds_hashed, 257u);
  EXPECT_EQ(apu.result.seeds_hashed, 257u);
  EXPECT_EQ(cpu.result.seeds_hashed, 257u);
  // Tiny workloads are dominated by fixed costs on the GPU, so compare the
  // per-seed asymptotic ordering via a larger synthetic effort instead.
  sim::GpuModel gpu_model;
  sim::ApuModel apu_model;
  sim::CpuModel cpu_model;
  const u64 big = 1000000000ULL;
  const double tg =
      gpu_model.time_for_seeds_s(big, hash::HashAlgo::kSha3_256);
  const double ta = apu_model.time_for_seeds_s(big, hash::HashAlgo::kSha3_256);
  const double tc =
      cpu_model.time_for_seeds_s(big, hash::HashAlgo::kSha3_256, 64);
  EXPECT_LT(tg, ta);
  EXPECT_LT(ta, tc);
}

TEST(Backends, ApuChecksFlagPerBatch) {
  // The APU engine raises the check interval to the 256-seed batch size;
  // correctness must be unaffected.
  auto backend = make_backend("apu", small_cfg());
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(128);
  SearchOptions opts;
  opts.max_distance = 1;
  opts.check_interval = 1;  // engine overrides upward
  const auto report = backend->search(
      base, digest_of(truth, hash::HashAlgo::kSha3_256),
      hash::HashAlgo::kSha3_256, opts);
  EXPECT_TRUE(report.result.found);
}

TEST(Backends, IteratorChoiceAffectsGpuModeledTime) {
  EngineConfig chase = small_cfg();
  EngineConfig alg515 = small_cfg();
  alg515.iterator = sim::IterAlgo::kAlg515;

  Xoshiro256 rng(7);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  SearchOptions opts;
  opts.max_distance = 2;
  const Bytes digest = digest_of(unrelated, hash::HashAlgo::kSha3_256);

  const auto t_chase = GpuSimSearchEngine(chase).search(
      base, digest, hash::HashAlgo::kSha3_256, opts);
  const auto t_515 = GpuSimSearchEngine(alg515).search(
      base, digest, hash::HashAlgo::kSha3_256, opts);
  EXPECT_EQ(t_chase.result.seeds_hashed, t_515.result.seeds_hashed);
  EXPECT_LT(t_chase.modeled_device_seconds, t_515.modeled_device_seconds);
}

}  // namespace
}  // namespace rbc
