// Validates the calibrated device models against the paper's published
// numbers. Anchored cells must land within ~2%; derived (non-anchored)
// cells — average-case rows, scaling curves, heatmap shape, crossovers —
// must land within ~10%, since they follow from model structure alone.
#include <gtest/gtest.h>

#include "hash/traits.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"
#include "sim/energy.hpp"
#include "sim/gpu_model.hpp"
#include "sim/multi_gpu.hpp"

namespace rbc::sim {
namespace {

using hash::HashAlgo;

constexpr double kAnchorTol = 0.02;   // relative
constexpr double kDerivedTol = 0.10;  // relative

void expect_near_rel(double actual, double expected, double tol,
                     const std::string& what) {
  EXPECT_NEAR(actual / expected, 1.0, tol) << what << ": actual=" << actual
                                           << " expected=" << expected;
}

// --- Table 5: search-only times, d = 5 --------------------------------------

TEST(Table5Anchors, GpuExhaustive) {
  GpuModel gpu;
  expect_near_rel(gpu.exhaustive_time_s(5, HashAlgo::kSha1), 1.56, kAnchorTol,
                  "GPU SHA-1 exhaustive");
  expect_near_rel(gpu.exhaustive_time_s(5, HashAlgo::kSha3_256), 4.67,
                  kAnchorTol, "GPU SHA-3 exhaustive");
}

TEST(Table5Anchors, ApuExhaustive) {
  ApuModel apu;
  expect_near_rel(apu.exhaustive_time_s(5, HashAlgo::kSha1), 1.62, kAnchorTol,
                  "APU SHA-1 exhaustive");
  expect_near_rel(apu.exhaustive_time_s(5, HashAlgo::kSha3_256), 13.95,
                  kAnchorTol, "APU SHA-3 exhaustive");
}

TEST(Table5Anchors, CpuExhaustive) {
  CpuModel cpu;
  expect_near_rel(cpu.exhaustive_time_s(5, HashAlgo::kSha1, 64), 12.09,
                  kAnchorTol, "CPU SHA-1 exhaustive");
  expect_near_rel(cpu.exhaustive_time_s(5, HashAlgo::kSha3_256, 64), 60.68,
                  kAnchorTol, "CPU SHA-3 exhaustive");
}

TEST(Table5Derived, AverageCaseRows) {
  // The average-case rows are NOT calibrated; they follow from Eq. 3.
  GpuModel gpu;
  ApuModel apu;
  CpuModel cpu;
  expect_near_rel(gpu.average_time_s(5, HashAlgo::kSha1), 0.85, kDerivedTol,
                  "GPU SHA-1 average");
  expect_near_rel(gpu.average_time_s(5, HashAlgo::kSha3_256), 2.42,
                  kDerivedTol, "GPU SHA-3 average");
  expect_near_rel(apu.average_time_s(5, HashAlgo::kSha1), 0.83, kDerivedTol,
                  "APU SHA-1 average");
  expect_near_rel(apu.average_time_s(5, HashAlgo::kSha3_256), 7.05,
                  kDerivedTol, "APU SHA-3 average");
  expect_near_rel(cpu.average_time_s(5, HashAlgo::kSha1, 64), 6.04,
                  kDerivedTol, "CPU SHA-1 average");
  expect_near_rel(cpu.average_time_s(5, HashAlgo::kSha3_256, 64), 30.52,
                  kDerivedTol, "CPU SHA-3 average");
}

TEST(Table5Derived, CrossPlatformOrdering) {
  // §4.6: GPU ~ APU on SHA-1; GPU ~3x APU on SHA-3; CPU slowest everywhere.
  GpuModel gpu;
  ApuModel apu;
  CpuModel cpu;
  const double g1 = gpu.exhaustive_time_s(5, HashAlgo::kSha1);
  const double a1 = apu.exhaustive_time_s(5, HashAlgo::kSha1);
  const double c1 = cpu.exhaustive_time_s(5, HashAlgo::kSha1, 64);
  EXPECT_NEAR(a1 / g1, 1.0, 0.15) << "GPU and APU roughly tie on SHA-1";
  EXPECT_GT(c1 / g1, 4.0) << "CPU much slower than GPU on SHA-1";

  const double g3 = gpu.exhaustive_time_s(5, HashAlgo::kSha3_256);
  const double a3 = apu.exhaustive_time_s(5, HashAlgo::kSha3_256);
  const double c3 = cpu.exhaustive_time_s(5, HashAlgo::kSha3_256, 64);
  EXPECT_NEAR(a3 / g3, 2.99, 0.3) << "GPU ~3x APU on SHA-3";
  EXPECT_NEAR(c3 / g3, 13.06, 1.5) << "GPU ~13x CPU on SHA-3";
}

TEST(Table5Derived, TimeThresholdConclusions) {
  // §4.6: everything fits T=20s on SHA-1; only SALTED-CPU exceeds on SHA-3.
  GpuModel gpu;
  ApuModel apu;
  CpuModel cpu;
  const double T = 20.0;
  EXPECT_LT(gpu.exhaustive_time_s(5, HashAlgo::kSha1) + 0.9, T);
  EXPECT_LT(apu.exhaustive_time_s(5, HashAlgo::kSha1) + 0.9, T);
  EXPECT_LT(cpu.exhaustive_time_s(5, HashAlgo::kSha1, 64) + 0.9, T);
  EXPECT_LT(gpu.exhaustive_time_s(5, HashAlgo::kSha3_256) + 0.9, T);
  EXPECT_LT(apu.exhaustive_time_s(5, HashAlgo::kSha3_256) + 0.9, T);
  EXPECT_GT(cpu.exhaustive_time_s(5, HashAlgo::kSha3_256, 64) + 0.9, T);
}

// --- Table 4: seed iterators -------------------------------------------------

TEST(Table4Anchors, IteratorComparison) {
  GpuModel gpu;
  expect_near_rel(
      gpu.exhaustive_time_s(5, HashAlgo::kSha3_256, IterAlgo::kChase382), 4.67,
      kAnchorTol, "Alg 382");
  expect_near_rel(
      gpu.exhaustive_time_s(5, HashAlgo::kSha3_256, IterAlgo::kAlg515), 7.53,
      kAnchorTol, "Alg 515");
  expect_near_rel(
      gpu.exhaustive_time_s(5, HashAlgo::kSha3_256, IterAlgo::kGosper), 6.04,
      kAnchorTol, "Gosper");
}

TEST(Table4Derived, ChaseWinsForBothHashes) {
  GpuModel gpu;
  for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
    const double chase = gpu.exhaustive_time_s(5, h, IterAlgo::kChase382);
    EXPECT_LT(chase, gpu.exhaustive_time_s(5, h, IterAlgo::kAlg515));
    EXPECT_LT(chase, gpu.exhaustive_time_s(5, h, IterAlgo::kGosper));
  }
}

// --- Fig. 3: GPU parameter grid search ---------------------------------------

TEST(Fig3Derived, BestConfigurationIsNearPaperChoice) {
  GpuModel gpu;
  double best = 1e30;
  int best_n = 0, best_b = 0;
  for (int n : {1, 5, 10, 25, 50, 100, 200, 400, 800, 1600, 3200, 12800}) {
    for (int b : {32, 64, 128, 256, 512, 1024}) {
      GpuSearchConfig proto;
      proto.seeds_per_thread = n;
      proto.threads_per_block = b;
      const double t = gpu.ball_time_s(5, proto);
      if (t < best) {
        best = t;
        best_n = n;
        best_b = b;
      }
    }
  }
  // Paper: minimum at n=100, b=128 with a broad flat region. Accept the
  // minimum anywhere in the flat middle but require (100,128) within 3%.
  GpuSearchConfig paper_cfg;
  paper_cfg.seeds_per_thread = 100;
  paper_cfg.threads_per_block = 128;
  EXPECT_LE(gpu.ball_time_s(5, paper_cfg), best * 1.03)
      << "paper's (100,128) must sit in the flat optimum; model best was ("
      << best_n << "," << best_b << ")";
  EXPECT_GE(best_n, 25);
  EXPECT_LE(best_n, 1600);
}

TEST(Fig3Derived, ExtremesArePenalized) {
  GpuModel gpu;
  auto time_at = [&](int n, int b) {
    GpuSearchConfig proto;
    proto.seeds_per_thread = n;
    proto.threads_per_block = b;
    return gpu.ball_time_s(5, proto);
  };
  const double mid = time_at(100, 128);
  // One thread per seed ("over 8 billion seeds" §4.4) must be clearly worse.
  EXPECT_GT(time_at(1, 128), mid * 1.10);
  // Huge blocks blow the shared-memory budget for the iterator state.
  EXPECT_GT(time_at(100, 1024), mid * 1.01);
}

TEST(Fig3Model, OccupancyAccounting) {
  GpuModel gpu;
  GpuSearchConfig cfg;
  cfg.seeds = 1000000;
  cfg.seeds_per_thread = 100;
  cfg.threads_per_block = 128;
  const GpuOccupancy occ = gpu.occupancy(cfg);
  EXPECT_EQ(occ.total_threads, 10000u);
  EXPECT_EQ(occ.total_blocks, 79u);  // ceil(10000/128)
  EXPECT_GT(occ.blocks_per_sm, 0);
  EXPECT_LE(occ.threads_per_sm, 2048);
  EXPECT_GE(occ.waves, 1u);
  EXPECT_FALSE(occ.shared_memory_spill);
}

TEST(Fig3Model, InvalidConfigsRejected) {
  GpuModel gpu;
  GpuSearchConfig cfg;
  cfg.seeds = 100;
  cfg.seeds_per_thread = 0;
  EXPECT_THROW(gpu.search_time_s(cfg), rbc::CheckFailure);
  cfg.seeds_per_thread = 10;
  cfg.threads_per_block = 48;  // not a warp multiple
  EXPECT_THROW(gpu.search_time_s(cfg), rbc::CheckFailure);
}

// --- §3.3: APU PE arithmetic --------------------------------------------------

TEST(ApuModelTest, PeCountsMatchPaper) {
  ApuModel apu;
  EXPECT_EQ(apu.pe_count(HashAlgo::kSha1), 65536);   // "65k PEs"
  EXPECT_EQ(apu.pe_count(HashAlgo::kSha3_256), 26176);  // "26k PEs"
  EXPECT_EQ(apu.spec().total_bps(), 131072);
}

TEST(ApuModelTest, Sha1RunsMorePesThanSha3) {
  ApuModel apu;
  EXPECT_NEAR(static_cast<double>(apu.pe_count(HashAlgo::kSha1)) /
                  apu.pe_count(HashAlgo::kSha3_256),
              2.5, 0.01);  // §3.3: "2.5x more PEs ... for SHA-1"
}

// --- §4.3: CPU strong scaling -------------------------------------------------

TEST(CpuScalingDerived, SpeedupsMatchPaper) {
  CpuModel cpu;
  EXPECT_NEAR(cpu.speedup(HashAlgo::kSha1, 64), 59.0, 1.5);
  EXPECT_NEAR(cpu.speedup(HashAlgo::kSha3_256, 64), 63.0, 1.0);
}

TEST(CpuScalingDerived, MonotonicInThreads) {
  CpuModel cpu;
  double prev = 0;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    const double s = cpu.speedup(HashAlgo::kSha3_256, p);
    EXPECT_GT(s, prev);
    EXPECT_LE(s, p + 1e-9);
    prev = s;
  }
}

// --- Table 6: energy -----------------------------------------------------------

TEST(Table6Anchors, EnergyTotals) {
  GpuModel gpu;
  ApuModel apu;
  EnergyModel energy;
  const double tol = 0.04;
  expect_near_rel(
      energy.gpu_energy(a100(), HashAlgo::kSha1,
                        gpu.exhaustive_time_s(5, HashAlgo::kSha1)).total_joules,
      317.20, tol, "GPU SHA-1 joules");
  expect_near_rel(
      energy.gpu_energy(a100(), HashAlgo::kSha3_256,
                        gpu.exhaustive_time_s(5, HashAlgo::kSha3_256)).total_joules,
      946.55, tol, "GPU SHA-3 joules");
  expect_near_rel(
      energy.apu_energy(gemini_apu(), HashAlgo::kSha1,
                        apu.exhaustive_time_s(5, HashAlgo::kSha1)).total_joules,
      124.43, tol, "APU SHA-1 joules");
  expect_near_rel(
      energy.apu_energy(gemini_apu(), HashAlgo::kSha3_256,
                        apu.exhaustive_time_s(5, HashAlgo::kSha3_256)).total_joules,
      974.06, tol, "APU SHA-3 joules");
}

TEST(Table6Derived, QualitativeFindings) {
  GpuModel gpu;
  ApuModel apu;
  EnergyModel energy;
  // §4.7: on SHA-1 the APU needs ~39.2% of the GPU's joules.
  const double gpu1 =
      energy.gpu_energy(a100(), HashAlgo::kSha1,
                        gpu.exhaustive_time_s(5, HashAlgo::kSha1)).total_joules;
  const double apu1 =
      energy.apu_energy(gemini_apu(), HashAlgo::kSha1,
                        apu.exhaustive_time_s(5, HashAlgo::kSha1)).total_joules;
  EXPECT_NEAR(apu1 / gpu1, 0.392, 0.04);
  // On SHA-3 the two are roughly equivalent.
  const double gpu3 = energy
                          .gpu_energy(a100(), HashAlgo::kSha3_256,
                                      gpu.exhaustive_time_s(5, HashAlgo::kSha3_256))
                          .total_joules;
  const double apu3 = energy
                          .apu_energy(gemini_apu(), HashAlgo::kSha3_256,
                                      apu.exhaustive_time_s(5, HashAlgo::kSha3_256))
                          .total_joules;
  EXPECT_NEAR(apu3 / gpu3, 1.0, 0.10);
}

// --- Fig. 4: multi-GPU scaling ---------------------------------------------------

TEST(Fig4Anchors, Sha3Speedups) {
  MultiGpuModel multi;
  const auto ex = multi.scaling_curve(5, HashAlgo::kSha3_256, false, 3);
  EXPECT_NEAR(ex[2].speedup, 2.87, 0.06);
  const auto ee = multi.scaling_curve(5, HashAlgo::kSha3_256, true, 3);
  EXPECT_NEAR(ee[2].speedup, 2.66, 0.08);
}

TEST(Fig4Derived, QualitativeShape) {
  MultiGpuModel multi;
  for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
    const auto ex = multi.scaling_curve(5, h, false, 3);
    const auto ee = multi.scaling_curve(5, h, true, 3);
    // Speedup increases with GPU count; exhaustive scales better than
    // early-exit (§4.8).
    EXPECT_GT(ex[1].speedup, 1.5);
    EXPECT_GT(ex[2].speedup, ex[1].speedup);
    EXPECT_GT(ex[2].speedup, ee[2].speedup);
    EXPECT_EQ(ex[0].speedup, 1.0);
  }
  // SHA-3 scales better than SHA-1 for a given search type.
  const auto s1 = multi.scaling_curve(5, HashAlgo::kSha1, false, 3);
  const auto s3 = multi.scaling_curve(5, HashAlgo::kSha3_256, false, 3);
  EXPECT_GT(s3[2].speedup, s1[2].speedup);
  // Minimum advertised speedup in the abstract: 2.66x on 3 GPUs (SHA-3 EE).
  const auto ee3 = multi.scaling_curve(5, HashAlgo::kSha3_256, true, 3);
  EXPECT_GE(ee3[2].speedup, 2.58);
}

// --- Table 7: prior-work comparison ----------------------------------------------

TEST(Table7Anchors, LegacyEngineTimes) {
  CpuModel cpu;
  GpuLegacyModel gpu_legacy;
  const u64 n5 = 8987138113ULL;
  const u64 n4 = 177589057ULL;
  expect_near_rel(cpu.legacy_time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128, 64),
                  44.7, kAnchorTol, "AES CPU d=5");
  expect_near_rel(gpu_legacy.time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128),
                  2.56, kAnchorTol, "AES GPU d=5");
  expect_near_rel(
      cpu.legacy_time_for_seeds_s(n4, crypto::KeygenAlgo::kSaberLike, 64),
      44.58, kAnchorTol, "SABER CPU d=4");
  expect_near_rel(
      gpu_legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kSaberLike), 14.03,
      kAnchorTol, "SABER GPU d=4");
  expect_near_rel(
      cpu.legacy_time_for_seeds_s(n4, crypto::KeygenAlgo::kDilithiumLike, 64),
      204.92, kAnchorTol, "Dilithium CPU d=4");
  expect_near_rel(
      gpu_legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kDilithiumLike),
      27.91, kAnchorTol, "Dilithium GPU d=4");
}

TEST(RelatedWork, V100VersusCpuCoreThroughput) {
  // Wright et al. [39]: "a single Nvidia V100 GPU achieves the same search
  // throughput as roughly 300 CPU cores" for the AES-based RBC search. The
  // prior-work GPU kernels were less optimized per-candidate than the EPYC
  // AES path (GPU registers were the bottleneck, §1); with the V100's raw
  // throughput and the calibrated per-candidate costs, the model must land
  // in the low hundreds of CPU-core equivalents.
  GpuLegacyModel v100_legacy(v100());
  CpuModel cpu;
  const u64 n5 = 8987138113ULL;
  const double v100_keys_per_s =
      static_cast<double>(n5) /
      v100_legacy.time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128);
  const double core_keys_per_s =
      static_cast<double>(n5) /
      cpu.legacy_time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128, 1);
  const double core_equivalents = v100_keys_per_s / core_keys_per_s;
  EXPECT_GT(core_equivalents, 100.0);
  EXPECT_LT(core_equivalents, 1000.0);
}

TEST(Table7Derived, SaltedBeatsPqcBaselines) {
  // §4.9: SALTED-GPU searches d=5 in under 5 s while the PQC baselines need
  // over 5 s for d=4 only; SALTED-APU also beats both PQC GPU baselines.
  GpuModel gpu;
  ApuModel apu;
  GpuLegacyModel legacy;
  const u64 n4 = 177589057ULL;
  const double salted_gpu = gpu.exhaustive_time_s(5, HashAlgo::kSha3_256);
  EXPECT_LT(salted_gpu, 5.0);
  EXPECT_GT(legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kSaberLike), 5.0);
  EXPECT_GT(legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kDilithiumLike),
            5.0);
  const double salted_apu = apu.exhaustive_time_s(5, HashAlgo::kSha3_256);
  EXPECT_LT(salted_apu,
            legacy.time_for_seeds_s(n4, crypto::KeygenAlgo::kSaberLike));
  // §4.9: AES prior work is ~45% faster than SALTED-GPU SHA-3 (2.56 vs 4.67).
  const u64 n5 = 8987138113ULL;
  const double aes = legacy.time_for_seeds_s(n5, crypto::KeygenAlgo::kAes128);
  EXPECT_LT(aes, salted_gpu);
  EXPECT_NEAR(salted_gpu / aes, 4.67 / 2.56, 0.2);
}

}  // namespace
}  // namespace rbc::sim
