#include <gtest/gtest.h>

#include "combinatorics/binomial.hpp"

namespace rbc::comb {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial64(0, 0), 1u);
  EXPECT_EQ(binomial64(5, 0), 1u);
  EXPECT_EQ(binomial64(5, 5), 1u);
  EXPECT_EQ(binomial64(5, 2), 10u);
  EXPECT_EQ(binomial64(10, 3), 120u);
  EXPECT_EQ(binomial64(52, 5), 2598960u);
}

TEST(Binomial, KGreaterThanNIsZero) {
  EXPECT_EQ(binomial64(3, 5), 0u);
  EXPECT_EQ(binomial128(0, 1), 0u);
}

TEST(Binomial, PaperSeedSpaceShells) {
  // C(256, i) for the shells the paper searches.
  EXPECT_EQ(binomial64(256, 1), 256u);
  EXPECT_EQ(binomial64(256, 2), 32640u);
  EXPECT_EQ(binomial64(256, 3), 2763520u);
  EXPECT_EQ(binomial64(256, 4), 174792640u);
  EXPECT_EQ(binomial64(256, 5), 8809549056u);
}

TEST(Binomial, SymmetryOnTableDomain) {
  for (int n = 1; n <= 256; n += 15) {
    for (int k = 0; k <= kMaxK && k <= n; ++k) {
      if (n - k <= kMaxK) {
        EXPECT_EQ(binomial128(n, k), binomial128(n, n - k));
      }
    }
  }
}

TEST(Binomial, PascalRule) {
  for (int n = 2; n <= 256; n += 7) {
    for (int k = 1; k <= kMaxK && k < n; ++k) {
      EXPECT_EQ(binomial128(n, k),
                binomial128(n - 1, k) + binomial128(n - 1, k - 1));
    }
  }
}

TEST(Binomial, U64OverflowDetected) {
  // C(256, 16) ≈ 1.08e25 > 2^64.
  EXPECT_THROW(binomial64(256, 16), rbc::CheckFailure);
  EXPECT_NO_THROW(binomial128(256, 16));
}

TEST(Binomial, DomainChecks) {
  EXPECT_THROW(binomial128(-1, 0), rbc::CheckFailure);
  EXPECT_THROW(binomial128(0, -1), rbc::CheckFailure);
  EXPECT_THROW(binomial128(257, 1), rbc::CheckFailure);
  EXPECT_THROW(binomial128(256, 17), rbc::CheckFailure);
}

TEST(BinomialTable, MatchesDirectComputation) {
  const auto& B = BinomialTable::instance();
  for (int m = 0; m <= 256; m += 5) {
    for (int t = 0; t <= kMaxK; ++t) {
      EXPECT_EQ(B(m, t), binomial128(m, t)) << "m=" << m << " t=" << t;
    }
  }
}

TEST(BinomialTable, OutOfRangeIsZero) {
  const auto& B = BinomialTable::instance();
  EXPECT_EQ(B(-1, 0), 0u);
  EXPECT_EQ(B(10, -1), 0u);
  EXPECT_EQ(B(10, kMaxK + 1), 0u);
  EXPECT_EQ(B(3, 5), 0u);
}

// Table 1 of the paper: exhaustive u(d) and average a(d) seed counts.
struct Table1Row {
  int d;
  u64 exhaustive;
  u64 average;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, MatchesEquations) {
  const auto row = GetParam();
  EXPECT_EQ(exhaustive_search_count(row.d), static_cast<u128>(row.exhaustive));
  EXPECT_EQ(average_search_count(row.d), static_cast<u128>(row.average));
}

// Exact values; the paper's Table 1 rounds these (3.3e4, 2.8e6, ...).
// u(d) = sum_{i<=d} C(256,i); a(d) = u(d-1) + C(256,d)/2.
INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1Test,
    ::testing::Values(Table1Row{1, 257, 129},
                      Table1Row{2, 32897, 16577},
                      Table1Row{3, 2796417, 1414657},
                      Table1Row{4, 177589057, 90192737},
                      Table1Row{5, 8987138113u, 4582363585u}));

TEST(SearchCounts, ExhaustiveAtZeroIsOne) {
  EXPECT_EQ(exhaustive_search_count(0), 1u);
}

TEST(SearchCounts, AverageRequiresPositiveD) {
  EXPECT_THROW(average_search_count(0), rbc::CheckFailure);
}

TEST(SearchCounts, AverageIsBelowExhaustive) {
  for (int d = 1; d <= 8; ++d) {
    EXPECT_LT(average_search_count(d), exhaustive_search_count(d));
    EXPECT_GT(average_search_count(d), exhaustive_search_count(d - 1));
  }
}

TEST(SearchCounts, OpponentSpaceIsTwoTo256) {
  const long double p = opponent_search_space();
  EXPECT_NEAR(static_cast<double>(p / 1.157920892373162e77L), 1.0, 1e-9);
}

TEST(U128ToString, Formatting) {
  EXPECT_EQ(u128_to_string(0), "0");
  EXPECT_EQ(u128_to_string(12345), "12345");
  EXPECT_EQ(u128_to_string(binomial128(256, 5)), "8809549056");
  // C(256,16), beyond u64.
  EXPECT_EQ(u128_to_string(binomial128(256, 16)), "10078751602022313874633200");
}

}  // namespace
}  // namespace rbc::comb
