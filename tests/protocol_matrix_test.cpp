// Full protocol matrix sweep: every backend x hash x keygen x TAPKI x
// distance combination must authenticate and agree on the session key.
// A breadth-first integration net over the whole public API.
#include <gtest/gtest.h>

#include "rbc/protocol.hpp"

namespace rbc {
namespace {

struct MatrixCase {
  const char* backend;
  hash::HashAlgo hash;
  crypto::KeygenAlgo keygen;
  bool tapki;
  int distance;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  const auto& c = info.param;
  std::string name = c.backend;
  name += c.hash == hash::HashAlgo::kSha1 ? "_sha1" : "_sha3";
  switch (c.keygen) {
    case crypto::KeygenAlgo::kAes128:
      name += "_aes";
      break;
    case crypto::KeygenAlgo::kSaberLike:
      name += "_saber";
      break;
    case crypto::KeygenAlgo::kDilithiumLike:
      name += "_dilithium";
      break;
    case crypto::KeygenAlgo::kKyberLike:
      name += "_kyber";
      break;
    case crypto::KeygenAlgo::kWots:
      name += "_wots";
      break;
  }
  name += c.tapki ? "_tapki" : "_raw";
  name += "_d" + std::to_string(c.distance);
  return name;
}

class ProtocolMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ProtocolMatrix, AuthenticatesAndAgreesOnKey) {
  const MatrixCase& c = GetParam();

  // A device without erratic cells: the client's majority vote then equals
  // the enrolled word with overwhelming probability even with TAPKI off, so
  // the injected distance is exactly what the server must find. (Erratic
  // devices with and without TAPKI are exercised in protocol_test and the
  // TAPKI ablation bench.)
  puf::SramPufModel::Params params;
  params.num_addresses = 2;
  params.erratic_cell_fraction = 0.0;
  puf::SramPufModel device(params, 0xFACE);
  EnrollmentDatabase db(crypto::Aes128::Key{0x5c});
  Xoshiro256 rng(99);
  db.enroll(5, device, 80, 0.05, rng);

  RegistrationAuthority ra;
  CaConfig ca_cfg;
  ca_cfg.max_distance = 2;
  ca_cfg.tapki_enabled = c.tapki;
  EngineConfig ecfg;
  ecfg.host_threads = 2;
  CertificateAuthority ca(ca_cfg, std::move(db),
                          make_backend(c.backend, ecfg), &ra);

  ClientConfig ccfg;
  ccfg.device_id = 5;
  ccfg.hash_algo = c.hash;
  ccfg.keygen_algo = c.keygen;
  ccfg.injected_distance = c.distance;
  Client client(ccfg, &device, 0xBEE);

  const SessionReport session = run_authentication(client, ca, ra);
  ASSERT_TRUE(session.result.authenticated) << case_name({GetParam(), 0});
  EXPECT_EQ(session.result.found_distance, c.distance);
  EXPECT_FALSE(session.result.timed_out);
  ASSERT_FALSE(session.registered_public_key.empty());
  EXPECT_EQ(session.registered_public_key,
            client.derive_public_key(ca.config().salt));
  EXPECT_NEAR(session.comm_time_s, 0.90, 1e-9);
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const char* backend : {"cpu", "gpu", "apu"}) {
    for (auto h : {hash::HashAlgo::kSha1, hash::HashAlgo::kSha3_256}) {
      for (auto kg :
           {crypto::KeygenAlgo::kAes128, crypto::KeygenAlgo::kSaberLike}) {
        for (bool tapki : {true, false}) {
          for (int d : {1, 2}) {
            cases.push_back({backend, h, kg, tapki, d});
          }
        }
      }
    }
  }
  // Spot checks for the slowest keygens (one keygen per authentication).
  cases.push_back({"gpu", hash::HashAlgo::kSha3_256,
                   crypto::KeygenAlgo::kDilithiumLike, true, 2});
  cases.push_back({"cpu", hash::HashAlgo::kSha1,
                   crypto::KeygenAlgo::kDilithiumLike, false, 1});
  cases.push_back({"apu", hash::HashAlgo::kSha3_256,
                   crypto::KeygenAlgo::kKyberLike, true, 1});
  cases.push_back({"gpu", hash::HashAlgo::kSha1, crypto::KeygenAlgo::kWots,
                   true, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, ProtocolMatrix,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace rbc
