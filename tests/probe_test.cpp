// Host throughput probes: the measurement layer every bench's "host" column
// depends on.
#include <gtest/gtest.h>

#include "sim/probe.hpp"

namespace rbc::sim {
namespace {

TEST(ProbeHash, CountsAndTimesAreSane) {
  for (auto algo : {hash::HashAlgo::kSha1, hash::HashAlgo::kSha3_256}) {
    const auto r = probe_hash(algo, 2000);
    EXPECT_EQ(r.operations, 2000u);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.ns_per_op(), 0.0);
    EXPECT_GT(r.ops_per_second(), 0.0);
    EXPECT_FALSE(r.what.empty());
  }
}

TEST(ProbeHash, Sha3CostsMoreThanSha1) {
  // Keccak-f[1600] vs one SHA-1 compression: a robust factor on any host.
  const auto sha1 = probe_hash(hash::HashAlgo::kSha1, 20000);
  const auto sha3 = probe_hash(hash::HashAlgo::kSha3_256, 20000);
  EXPECT_GT(sha3.ns_per_op(), 1.5 * sha1.ns_per_op());
}

TEST(ProbeHashGeneric, AtLeastAsExpensiveAsFixedPath) {
  // Best-of-5 to ride out scheduler noise; the generic streaming path does
  // strictly more work than the fixed-input path. The margin is loose: the
  // memset-style padding and bulk sponge absorb brought the streaming path
  // within noise of the fixed path for one-block inputs, so under a
  // parallel ctest run the two measurements can cross — the bound only
  // rejects a generic path *implausibly* faster than the fixed one (a
  // probe wired to the wrong kernel), not ordinary timing jitter.
  for (auto algo : {hash::HashAlgo::kSha1, hash::HashAlgo::kSha3_256}) {
    double generic = 1e300, fixed = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      generic = std::min(generic, probe_hash_generic(algo, 20000).ns_per_op());
      fixed = std::min(fixed, probe_hash(algo, 20000).ns_per_op());
    }
    EXPECT_GT(generic, fixed * 0.5)
        << "generic path implausibly fast for " << static_cast<int>(algo);
  }
}

TEST(ProbeIterateAndHash, ProducesRequestedSeeds) {
  for (auto iter :
       {IterAlgo::kChase382, IterAlgo::kAlg515, IterAlgo::kGosper}) {
    const auto r =
        probe_iterate_and_hash(iter, hash::HashAlgo::kSha1, 3, 5000);
    EXPECT_EQ(r.operations, 5000u);
    EXPECT_GT(r.ns_per_op(), 0.0);
  }
}

TEST(ProbeIterateAndHash, StopsAtShellExhaustion) {
  // Shell k=1 has only 256 seeds; asking for more must not overrun.
  const auto r = probe_iterate_and_hash(IterAlgo::kChase382,
                                        hash::HashAlgo::kSha1, 1, 100000);
  EXPECT_EQ(r.operations, 256u);
}

TEST(ProbeKeygen, OrdersOfMagnitudeOrdering) {
  // Best-of-3 minima make the ratio robust to scheduler noise on loaded
  // hosts; the gap being asserted is >20x, far beyond jitter.
  double aes = 1e300, saber = 1e300, dilithium = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    aes = std::min(aes,
                   probe_keygen(crypto::KeygenAlgo::kAes128, 2000).ns_per_op());
    saber = std::min(
        saber, probe_keygen(crypto::KeygenAlgo::kSaberLike, 20).ns_per_op());
    dilithium = std::min(
        dilithium,
        probe_keygen(crypto::KeygenAlgo::kDilithiumLike, 10).ns_per_op());
  }
  // The lattice keygens are orders of magnitude above AES (Table 7's gap).
  EXPECT_GT(saber, 20 * aes);
  EXPECT_GT(dilithium, saber);
}

}  // namespace
}  // namespace rbc::sim
