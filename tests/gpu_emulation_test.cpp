// The CUDA-like execution framework and the SALTED-GPU kernel written in
// the paper's §3.2 shape.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "gpu/salted_kernel.hpp"

namespace rbc::gpu {
namespace {

TEST(LaunchKernel, EveryThreadRunsExactlyOnce) {
  par::WorkerGroup pool(4);
  const Dim3 grid{7, 1, 1};
  const Dim3 block{32, 1, 1};
  std::vector<std::atomic<int>> hits(7 * 32);
  launch_kernel(pool, grid, block, 0, [&](const KernelCtx& ctx) {
    hits[ctx.global_thread_id()]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(LaunchKernel, IndexingMatchesCudaConvention) {
  par::WorkerGroup pool(2);
  std::atomic<u64> checks{0};
  launch_kernel(pool, Dim3{3, 1, 1}, Dim3{64, 1, 1}, 0,
                [&](const KernelCtx& ctx) {
                  EXPECT_EQ(ctx.global_thread_id(),
                            static_cast<u64>(ctx.blockIdx.x) * 64 +
                                ctx.threadIdx.x);
                  EXPECT_EQ(ctx.total_threads(), 192u);
                  EXPECT_LT(ctx.threadIdx.x, ctx.blockDim.x);
                  EXPECT_LT(ctx.blockIdx.x, ctx.gridDim.x);
                  checks++;
                });
  EXPECT_EQ(checks.load(), 192u);
}

TEST(LaunchKernel, SharedMemoryIsBlockLocalAndZeroed) {
  par::WorkerGroup pool(4);
  // Each block writes its blockIdx into shared memory at thread 0 and every
  // thread verifies it reads its OWN block's value (no cross-block bleed).
  std::atomic<int> violations{0};
  launch_kernel(pool, Dim3{16, 1, 1}, Dim3{8, 1, 1}, sizeof(u32),
                [&](const KernelCtx& ctx) {
                  auto* word = reinterpret_cast<u32*>(ctx.shared.data());
                  if (ctx.threadIdx.x == 0) {
                    if (*word != 0) violations++;  // must start zeroed
                    *word = ctx.blockIdx.x + 1;
                  } else if (*word != ctx.blockIdx.x + 1) {
                    violations++;
                  }
                });
  EXPECT_EQ(violations.load(), 0);
}

TEST(LaunchKernel, RejectsMultiDimensionalLaunches) {
  par::WorkerGroup pool(1);
  EXPECT_THROW(
      launch_kernel(pool, Dim3{1, 2, 1}, Dim3{32, 1, 1}, 0,
                    [](const KernelCtx&) {}),
      CheckFailure);
}

TEST(UnifiedFlagTest, HostAndDeviceViews) {
  UnifiedFlag flag;
  EXPECT_FALSE(flag.get());
  par::WorkerGroup pool(2);
  launch_kernel(pool, Dim3{4, 1, 1}, Dim3{16, 1, 1}, 0,
                [&](const KernelCtx& ctx) {
                  if (ctx.global_thread_id() == 33) flag.set();
                });
  EXPECT_TRUE(flag.get());  // host observes the device write
  flag.clear();
  EXPECT_FALSE(flag.get());
}

TEST(GridFor, CeilDivision) {
  EXPECT_EQ(grid_for(100, 32).x, 4u);
  EXPECT_EQ(grid_for(128, 32).x, 4u);
  EXPECT_EQ(grid_for(1, 128).x, 1u);
}

// --- the SALTED kernel ---------------------------------------------------------

Seed256 flipped(Seed256 s, std::initializer_list<int> bits) {
  for (int b : bits) s.flip_bit(b);
  return s;
}

TEST(SaltedKernel, FindsSeedAtEachDistance) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(1);
  const hash::Sha3SeedHash hash;
  for (int d : {0, 1, 2}) {
    const Seed256 base = Seed256::random(rng);
    Seed256 truth = base;
    for (int i = 0; i < d; ++i) truth.flip_bit(30 + 60 * i);
    const auto r = gpu_emulated_search<hash::Sha3SeedHash>(
        pool, base, hash(truth), 2, [](int) { return 8; },
        /*threads_per_block=*/32, hash);
    EXPECT_TRUE(r.found) << "d=" << d;
    EXPECT_EQ(r.distance, d);
    EXPECT_EQ(r.seed, truth);
  }
}

TEST(SaltedKernel, HostSkipsLaterShellsAfterFlag) {
  // Seed at d=1: the host must not launch the d=2 kernel, so far fewer than
  // 32897 candidates are hashed.
  par::WorkerGroup pool(2);
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {100});
  const hash::Sha1SeedHash hash;
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(truth), 2, [](int) { return 4; }, 32, hash);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  EXPECT_LE(r.seeds_hashed, 512u);
}

TEST(SaltedKernel, ExhaustsShellWhenTargetAbsent) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(unrelated), 2, [](int k) { return k == 1 ? 4 : 16; },
      32, hash);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(SaltedKernel, GuardThreadsBeyondPartitionAreInert) {
  // p=5 partitions with block size 32: 27 guard threads must not hash.
  par::WorkerGroup pool(2);
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(unrelated), 1, [](int) { return 5; }, 32, hash);
  EXPECT_EQ(r.seeds_hashed, 257u);  // exactly the ball, no double counting
}

TEST(SaltedKernel, SessionDeadlineStopsKernelMidShell) {
  // The session's SearchContext reaches the emulated device loop: a kernel
  // already running when the deadline expires stops without finishing the
  // shell, and far before visiting the d<=3 ball (~2.8M candidates).
  par::WorkerGroup pool(2);
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  auto ctx = par::SearchContext::with_budget(0.0);
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(unrelated), 3, [](int) { return 4; }, 32, hash,
      /*timeout_s=*/1e30, &ctx);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.seeds_hashed, 2860000u);
}

TEST(SaltedKernel, AgreesWithReferenceEngineAcrossPartitionWidths) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {17, 211});
  const hash::Sha3SeedHash hash;
  for (int p : {1, 3, 16, 64}) {
    const auto r = gpu_emulated_search<hash::Sha3SeedHash>(
        pool, base, hash(truth), 2, [p](int) { return p; }, 32, hash);
    EXPECT_TRUE(r.found) << "p=" << p;
    EXPECT_EQ(r.seed, truth);
    EXPECT_EQ(r.distance, 2);
  }
}

}  // namespace
}  // namespace rbc::gpu
