// The CUDA-like execution framework and the SALTED-GPU kernel written in
// the paper's §3.2 shape.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "gpu/salted_kernel.hpp"

namespace rbc::gpu {
namespace {

TEST(LaunchKernel, EveryThreadRunsExactlyOnce) {
  par::WorkerGroup pool(4);
  const Dim3 grid{7, 1, 1};
  const Dim3 block{32, 1, 1};
  std::vector<std::atomic<int>> hits(7 * 32);
  launch_kernel(pool, grid, block, 0, [&](const KernelCtx& ctx) {
    hits[ctx.global_thread_id()]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(LaunchKernel, IndexingMatchesCudaConvention) {
  par::WorkerGroup pool(2);
  std::atomic<u64> checks{0};
  launch_kernel(pool, Dim3{3, 1, 1}, Dim3{64, 1, 1}, 0,
                [&](const KernelCtx& ctx) {
                  EXPECT_EQ(ctx.global_thread_id(),
                            static_cast<u64>(ctx.blockIdx.x) * 64 +
                                ctx.threadIdx.x);
                  EXPECT_EQ(ctx.total_threads(), 192u);
                  EXPECT_LT(ctx.threadIdx.x, ctx.blockDim.x);
                  EXPECT_LT(ctx.blockIdx.x, ctx.gridDim.x);
                  checks++;
                });
  EXPECT_EQ(checks.load(), 192u);
}

TEST(LaunchKernel, SharedMemoryIsBlockLocalAndZeroed) {
  par::WorkerGroup pool(4);
  // Each block writes its blockIdx into shared memory at thread 0 and every
  // thread verifies it reads its OWN block's value (no cross-block bleed).
  std::atomic<int> violations{0};
  launch_kernel(pool, Dim3{16, 1, 1}, Dim3{8, 1, 1}, sizeof(u32),
                [&](const KernelCtx& ctx) {
                  auto* word = reinterpret_cast<u32*>(ctx.shared.data());
                  if (ctx.threadIdx.x == 0) {
                    if (*word != 0) violations++;  // must start zeroed
                    *word = ctx.blockIdx.x + 1;
                  } else if (*word != ctx.blockIdx.x + 1) {
                    violations++;
                  }
                });
  EXPECT_EQ(violations.load(), 0);
}

TEST(LaunchKernel, RejectsMultiDimensionalLaunches) {
  par::WorkerGroup pool(1);
  EXPECT_THROW(
      launch_kernel(pool, Dim3{1, 2, 1}, Dim3{32, 1, 1}, 0,
                    [](const KernelCtx&) {}),
      CheckFailure);
}

TEST(UnifiedFlagTest, HostAndDeviceViews) {
  UnifiedFlag flag;
  EXPECT_FALSE(flag.get());
  par::WorkerGroup pool(2);
  launch_kernel(pool, Dim3{4, 1, 1}, Dim3{16, 1, 1}, 0,
                [&](const KernelCtx& ctx) {
                  if (ctx.global_thread_id() == 33) flag.set();
                });
  EXPECT_TRUE(flag.get());  // host observes the device write
  flag.clear();
  EXPECT_FALSE(flag.get());
}

TEST(GridFor, CeilDivision) {
  EXPECT_EQ(grid_for(100, 32).x, 4u);
  EXPECT_EQ(grid_for(128, 32).x, 4u);
  EXPECT_EQ(grid_for(1, 128).x, 1u);
}

// --- the SALTED kernel ---------------------------------------------------------

Seed256 flipped(Seed256 s, std::initializer_list<int> bits) {
  for (int b : bits) s.flip_bit(b);
  return s;
}

TEST(SaltedKernel, FindsSeedAtEachDistance) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(1);
  const hash::Sha3SeedHash hash;
  for (int d : {0, 1, 2}) {
    const Seed256 base = Seed256::random(rng);
    Seed256 truth = base;
    for (int i = 0; i < d; ++i) truth.flip_bit(30 + 60 * i);
    const auto r = gpu_emulated_search<hash::Sha3SeedHash>(
        pool, base, hash(truth), 2, [](int) { return 8; },
        /*threads_per_block=*/32, hash);
    EXPECT_TRUE(r.found) << "d=" << d;
    EXPECT_EQ(r.distance, d);
    EXPECT_EQ(r.seed, truth);
  }
}

TEST(SaltedKernel, HostSkipsLaterShellsAfterFlag) {
  // Seed at d=1: the host must not launch the d=2 kernel, so far fewer than
  // 32897 candidates are hashed.
  par::WorkerGroup pool(2);
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {100});
  const hash::Sha1SeedHash hash;
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(truth), 2, [](int) { return 4; }, 32, hash);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  EXPECT_LE(r.seeds_hashed, 512u);
}

TEST(SaltedKernel, ExhaustsShellWhenTargetAbsent) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(unrelated), 2, [](int k) { return k == 1 ? 4 : 16; },
      32, hash);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(SaltedKernel, GuardThreadsBeyondPartitionAreInert) {
  // p=5 partitions with block size 32: 27 guard threads must not hash.
  par::WorkerGroup pool(2);
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(unrelated), 1, [](int) { return 5; }, 32, hash);
  EXPECT_EQ(r.seeds_hashed, 257u);  // exactly the ball, no double counting
}

TEST(SaltedKernel, SessionDeadlineStopsKernelMidShell) {
  // The session's SearchContext reaches the emulated device loop: a kernel
  // already running when the deadline expires stops without finishing the
  // shell, and far before visiting the d<=3 ball (~2.8M candidates).
  par::WorkerGroup pool(2);
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  const hash::Sha1SeedHash hash;
  auto ctx = par::SearchContext::with_budget(0.0);
  const auto r = gpu_emulated_search<hash::Sha1SeedHash>(
      pool, base, hash(unrelated), 3, [](int) { return 4; }, 32, hash,
      /*timeout_s=*/1e30, &ctx);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.seeds_hashed, 2860000u);
}

TEST(SaltedKernel, AgreesWithReferenceEngineAcrossPartitionWidths) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flipped(base, {17, 211});
  const hash::Sha3SeedHash hash;
  for (int p : {1, 3, 16, 64}) {
    const auto r = gpu_emulated_search<hash::Sha3SeedHash>(
        pool, base, hash(truth), 2, [p](int) { return p; }, 32, hash);
    EXPECT_TRUE(r.found) << "p=" << p;
    EXPECT_EQ(r.seed, truth);
    EXPECT_EQ(r.distance, 2);
  }
}

// --- heterogeneous CPU+GPU co-search (PR 4) --------------------------------

SearchOptions hetero_opts(int max_distance, bool early_exit) {
  SearchOptions opts;
  opts.max_distance = max_distance;
  opts.early_exit = early_exit;
  opts.num_threads = 2;
  opts.tile_seeds = 1024;  // many tiles, so both sides actually share work
  opts.timeout_s = 600.0;
  return opts;
}

TEST(HeteroCoSearch, ByteIdenticalToCpuOnlyTiledSearch) {
  // The acceptance property: CPU+GPU co-search over one shared scheduler is
  // byte-identical to the CPU-only tiled search on the same ball — same
  // found/seed/distance, and in exhaustive mode the same exact count.
  par::WorkerGroup pool(4);
  Xoshiro256 rng(10);
  const hash::Sha1BatchSeedHash hash;
  const Seed256 base = Seed256::random(rng);
  for (const bool planted : {true, false}) {
    const Seed256 target_seed =
        planted ? flipped(base, {41, 183}) : Seed256::random(rng);
    const auto digest = hash(target_seed);

    const auto opts = hetero_opts(2, /*early_exit=*/false);
    const auto hetero = hetero_cosearch<hash::Sha1BatchSeedHash>(
        pool, base, digest, opts, /*host_units=*/2, /*device_threads=*/8,
        /*threads_per_block=*/4, hash);

    comb::ChaseFactory factory;
    SearchOptions cpu_opts = opts;
    const auto cpu = rbc_search<hash::Sha1BatchSeedHash>(base, digest, factory,
                                                         pool, cpu_opts, hash);

    EXPECT_EQ(hetero.found, cpu.found) << "planted=" << planted;
    EXPECT_EQ(hetero.seeds_hashed, cpu.seeds_hashed) << "planted=" << planted;
    EXPECT_EQ(hetero.seeds_hashed, 32897u);
    if (planted) {
      EXPECT_EQ(hetero.seed, cpu.seed);
      EXPECT_EQ(hetero.distance, cpu.distance);
      EXPECT_EQ(hetero.distance, 2);
    }
  }
}

TEST(HeteroCoSearch, DeviceActuallySharesTheBall) {
  // With many small tiles and an exhaustive search, both the host units and
  // the emulated device should each take a nonzero share. The split is a race
  // by design (that is the point of the shared scheduler), so under heavy
  // machine load a single run can degenerate to one side; retry a few times
  // and require that a shared split shows up.
  par::WorkerGroup pool(4);
  Xoshiro256 rng(11);
  const hash::Sha1BatchSeedHash hash;
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  bool shared = false;
  for (int attempt = 0; attempt < 10 && !shared; ++attempt) {
    u64 device_seeds = 0;
    const auto r = hetero_cosearch<hash::Sha1BatchSeedHash>(
        pool, base, hash(unrelated), hetero_opts(2, /*early_exit=*/false),
        /*host_units=*/2, /*device_threads=*/8, /*threads_per_block=*/4, hash,
        nullptr, &device_seeds);
    ASSERT_EQ(r.seeds_hashed, 32897u);
    ASSERT_LE(device_seeds, 32897u);
    shared = device_seeds > 0 && device_seeds < 32896;
  }
  EXPECT_TRUE(shared) << "host/device never split the ball in 10 runs";
}

TEST(HeteroCoSearch, EarlyExitFindsPlantedSeedAtEachDistance) {
  par::WorkerGroup pool(4);
  Xoshiro256 rng(12);
  const hash::Sha3BatchSeedHash hash;
  for (int d : {0, 1, 2}) {
    const Seed256 base = Seed256::random(rng);
    Seed256 truth = base;
    for (int i = 0; i < d; ++i) truth.flip_bit(20 + 70 * i);
    const auto r = hetero_cosearch<hash::Sha3BatchSeedHash>(
        pool, base, hash(truth), hetero_opts(2, /*early_exit=*/true),
        /*host_units=*/2, /*device_threads=*/4, /*threads_per_block=*/2, hash);
    EXPECT_TRUE(r.found) << "d=" << d;
    EXPECT_EQ(r.distance, d);
    EXPECT_EQ(r.seed, truth);
  }
}

TEST(HeteroCoSearch, SessionDeadlineStopsBothSides) {
  par::WorkerGroup pool(2);
  Xoshiro256 rng(13);
  const hash::Sha1BatchSeedHash hash;
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  auto ctx = par::SearchContext::with_budget(0.0);
  SearchOptions opts = hetero_opts(3, /*early_exit=*/false);
  const auto r = hetero_cosearch<hash::Sha1BatchSeedHash>(
      pool, base, hash(unrelated), opts, /*host_units=*/2,
      /*device_threads=*/4, /*threads_per_block=*/2, hash, &ctx);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.seeds_hashed, 2860000u);
}

}  // namespace
}  // namespace rbc::gpu
