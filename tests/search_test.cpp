#include <gtest/gtest.h>

#include <atomic>

#include "combinatorics/algorithm515.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "rbc/search.hpp"

namespace rbc {
namespace {

using hash::Sha1SeedHash;
using hash::Sha3SeedHash;

// A seed at distance `d` from base, with deterministic flipped positions.
Seed256 seed_at_distance(const Seed256& base, int d, u64 rng_seed) {
  Xoshiro256 rng(rng_seed);
  Seed256 s = base;
  int flipped = 0;
  while (flipped < d) {
    const int bit = static_cast<int>(rng.next_below(256));
    if ((s ^ base).bit(bit)) continue;
    s.flip_bit(bit);
    ++flipped;
  }
  return s;
}

template <typename Hash, typename Factory>
SearchResult search_for(const Seed256& base, const Seed256& truth,
                        int max_distance, int threads,
                        bool early_exit = true) {
  Factory factory;
  par::WorkerGroup pool(threads);
  SearchOptions opts;
  opts.max_distance = max_distance;
  opts.num_threads = threads;
  opts.early_exit = early_exit;
  // These tests exercise search correctness, not the T threshold; keep the
  // budget generous so sanitizer/valgrind builds don't trip it.
  opts.timeout_s = 600.0;
  const Hash hash;
  return rbc_search<Hash>(base, hash(truth), factory, pool, opts, hash);
}

TEST(RbcSearch, FindsSeedAtDistanceZero) {
  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  const auto r =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, base, 3, 2);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 0);
  EXPECT_EQ(r.seed, base);
  EXPECT_EQ(r.seeds_hashed, 1u);
}

class SearchAtDistance : public ::testing::TestWithParam<int> {};

TEST_P(SearchAtDistance, Sha3ChaseFindsExactSeed) {
  const int d = GetParam();
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, d, 77);
  const auto r =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, truth, 3, 4);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, d);
  EXPECT_EQ(r.seed, truth);
  EXPECT_FALSE(r.timed_out);
}

TEST_P(SearchAtDistance, Sha1Alg515FindsExactSeed) {
  const int d = GetParam();
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, d, 78);
  const auto r =
      search_for<Sha1SeedHash, comb::Algorithm515Factory>(base, truth, 3, 3);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, d);
  EXPECT_EQ(r.seed, truth);
}

TEST_P(SearchAtDistance, Sha3GosperFindsExactSeed) {
  const int d = GetParam();
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, d, 79);
  const auto r =
      search_for<Sha3SeedHash, comb::GosperFactory>(base, truth, 3, 2);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, d);
  EXPECT_EQ(r.seed, truth);
}

INSTANTIATE_TEST_SUITE_P(Distances, SearchAtDistance,
                         ::testing::Values(1, 2, 3));

TEST(RbcSearch, FailsWhenSeedBeyondMaxDistance) {
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 4, 80);
  const auto r =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, truth, 2, 2);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.distance, -1);
  // Must have searched the full d<=2 ball: 1 + 256 + 32640 seeds.
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(RbcSearch, ExhaustiveModeVisitsWholeBall) {
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 1, 81);
  const auto r = search_for<Sha3SeedHash, comb::ChaseFactory>(
      base, truth, 2, 4, /*early_exit=*/false);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  // No early exit: all 32897 seeds hashed even though truth is at d=1.
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(RbcSearch, EarlyExitVisitsFewerSeeds) {
  Xoshiro256 rng(7);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 1, 82);
  const auto r =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, truth, 2, 4);
  EXPECT_TRUE(r.found);
  EXPECT_LT(r.seeds_hashed, 32897u);
}

TEST(RbcSearch, SingleThreadMatchesMultiThread) {
  Xoshiro256 rng(8);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 2, 83);
  const auto r1 =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, truth, 2, 1);
  const auto r4 =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, truth, 2, 4);
  EXPECT_TRUE(r1.found);
  EXPECT_TRUE(r4.found);
  EXPECT_EQ(r1.seed, r4.seed);
  EXPECT_EQ(r1.distance, r4.distance);
}

TEST(RbcSearch, TimeoutAbortsSearch) {
  Xoshiro256 rng(9);
  const Seed256 base = Seed256::random(rng);
  // Target nowhere in the ball; zero timeout must abort almost immediately.
  const Seed256 truth = seed_at_distance(base, 10, 84);
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  SearchOptions opts;
  opts.max_distance = 3;
  opts.num_threads = 2;
  opts.timeout_s = 0.0;
  const hash::Sha3SeedHash hash;
  const auto r =
      rbc_search<Sha3SeedHash>(base, hash(truth), factory, pool, opts, hash);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.seeds_hashed, 32897u);
}

TEST(RbcSearch, CheckIntervalDoesNotAffectCorrectness) {
  // §4.4: the flag-polling interval must not change results.
  Xoshiro256 rng(10);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 2, 85);
  for (u32 interval : {1u, 4u, 16u, 64u}) {
    comb::ChaseFactory factory;
    par::WorkerGroup pool(3);
    SearchOptions opts;
    opts.max_distance = 2;
    opts.num_threads = 3;
    opts.check_interval = interval;
    const hash::Sha3SeedHash hash;
    const auto r = rbc_search<Sha3SeedHash>(base, hash(truth), factory, pool,
                                            opts, hash);
    EXPECT_TRUE(r.found) << "interval " << interval;
    EXPECT_EQ(r.seed, truth);
  }
}

TEST(RbcSearch, WrongDigestNeverAuthenticates) {
  Xoshiro256 rng(11);
  const Seed256 base = Seed256::random(rng);
  // Digest of a completely unrelated seed.
  const Seed256 unrelated = Seed256::random(rng);
  const auto r =
      search_for<Sha3SeedHash, comb::ChaseFactory>(base, unrelated, 2, 2);
  EXPECT_FALSE(r.found);
}

TEST(RbcSearch, RejectsInvalidOptions) {
  Xoshiro256 rng(12);
  const Seed256 base = Seed256::random(rng);
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  const hash::Sha3SeedHash hash;
  SearchOptions opts;
  opts.max_distance = 99;  // beyond kMaxK
  opts.num_threads = 2;
  EXPECT_THROW(
      rbc_search<Sha3SeedHash>(base, hash(base), factory, pool, opts, hash),
      CheckFailure);
  opts.max_distance = 2;
  opts.num_threads = 0;  // SPMD width must be positive
  EXPECT_THROW(
      rbc_search<Sha3SeedHash>(base, hash(base), factory, pool, opts, hash),
      CheckFailure);
}

TEST(RbcSearch, WidthBeyondGroupSizeMultiplexes) {
  // More SPMD units than worker threads: legal under the shared-group
  // model — units queue and the result is identical.
  Xoshiro256 rng(20);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 2, 90);
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  const hash::Sha3SeedHash hash;
  SearchOptions opts;
  opts.max_distance = 2;
  opts.num_threads = 9;
  const auto r =
      rbc_search<Sha3SeedHash>(base, hash(truth), factory, pool, opts, hash);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.seed, truth);
}

TEST(RbcSearch, ExhaustiveModeHonorsTimeout) {
  // Regression: with early_exit=false the deadline must still cancel the
  // search promptly — cancellation is independent of the early-exit policy.
  Xoshiro256 rng(21);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 10, 91);  // not in the ball
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  const hash::Sha3SeedHash hash;
  SearchOptions opts;
  opts.max_distance = 4;  // ~183M seeds if allowed to run
  opts.num_threads = 2;
  opts.early_exit = false;
  opts.timeout_s = 0.0;
  WallTimer timer;
  const auto r =
      rbc_search<Sha3SeedHash>(base, hash(truth), factory, pool, opts, hash);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(timer.elapsed_s(), 30.0) << "timed-out exhaustive search must "
                                        "stop promptly, not visit the ball";
}

TEST(RbcSearch, ExternalCancelAbortsSearch) {
  Xoshiro256 rng(22);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 10, 92);
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  const hash::Sha3SeedHash hash;
  SearchOptions opts;
  opts.max_distance = 3;
  opts.num_threads = 2;
  par::SearchContext ctx;  // no deadline
  ctx.cancel();            // cancelled before it starts
  const auto r = rbc_search<Sha3SeedHash>(base, hash(truth), factory, pool,
                                          opts, hash, &ctx);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.cancelled);
  EXPECT_LT(r.seeds_hashed, 257u);
}

TEST(RbcSearch, SessionContextReportsProgress) {
  Xoshiro256 rng(23);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 5, 93);  // exhausts d<=2
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  const hash::Sha3SeedHash hash;
  SearchOptions opts;
  opts.max_distance = 2;
  opts.num_threads = 2;
  par::SearchContext ctx;
  const auto r = rbc_search<Sha3SeedHash>(base, hash(truth), factory, pool,
                                          opts, hash, &ctx);
  EXPECT_EQ(r.seeds_hashed, 32897u);
  EXPECT_EQ(ctx.progress(), r.seeds_hashed);
}

// --- tiled vs static schedule equivalence (PR 4) ---------------------------

template <typename Hash, typename Factory>
SearchResult search_scheduled(const Seed256& base, const Seed256& truth,
                              SearchSchedule schedule, bool early_exit,
                              int threads = 3, u64 tile_seeds = 0) {
  Factory factory;
  par::WorkerGroup pool(threads);
  SearchOptions opts;
  opts.max_distance = 2;
  opts.num_threads = threads;
  opts.early_exit = early_exit;
  opts.schedule = schedule;
  opts.tile_seeds = tile_seeds;
  opts.timeout_s = 600.0;
  const Hash hash;
  return rbc_search<Hash>(base, hash(truth), factory, pool, opts, hash);
}

template <typename Factory>
void expect_schedules_equivalent(u64 rng_seed) {
  Xoshiro256 rng(rng_seed);
  const Seed256 base = Seed256::random(rng);
  const Seed256 planted = seed_at_distance(base, 2, rng_seed + 40);
  const Seed256 absent = seed_at_distance(base, 9, rng_seed + 41);

  // Exhaustive, match absent: both schedules must visit the exact ball.
  const auto tiled_ex = search_scheduled<Sha1SeedHash, Factory>(
      base, absent, SearchSchedule::kTiled, /*early_exit=*/false);
  const auto static_ex = search_scheduled<Sha1SeedHash, Factory>(
      base, absent, SearchSchedule::kStatic, /*early_exit=*/false);
  EXPECT_FALSE(tiled_ex.found);
  EXPECT_FALSE(static_ex.found);
  EXPECT_EQ(tiled_ex.seeds_hashed, 32897u);
  EXPECT_EQ(static_ex.seeds_hashed, tiled_ex.seeds_hashed);

  // Exhaustive with a planted match: identical found/seed/distance AND
  // identical exact counts.
  const auto tiled_hit = search_scheduled<Sha1SeedHash, Factory>(
      base, planted, SearchSchedule::kTiled, /*early_exit=*/false);
  const auto static_hit = search_scheduled<Sha1SeedHash, Factory>(
      base, planted, SearchSchedule::kStatic, /*early_exit=*/false);
  EXPECT_TRUE(tiled_hit.found);
  EXPECT_TRUE(static_hit.found);
  EXPECT_EQ(tiled_hit.seed, planted);
  EXPECT_EQ(static_hit.seed, planted);
  EXPECT_EQ(tiled_hit.distance, 2);
  EXPECT_EQ(static_hit.distance, 2);
  EXPECT_EQ(tiled_hit.seeds_hashed, 32897u);
  EXPECT_EQ(static_hit.seeds_hashed, 32897u);

  // Early exit: both must report the same (unique) seed and distance.
  const auto tiled_ee = search_scheduled<Sha1SeedHash, Factory>(
      base, planted, SearchSchedule::kTiled, /*early_exit=*/true);
  const auto static_ee = search_scheduled<Sha1SeedHash, Factory>(
      base, planted, SearchSchedule::kStatic, /*early_exit=*/true);
  EXPECT_TRUE(tiled_ee.found);
  EXPECT_TRUE(static_ee.found);
  EXPECT_EQ(tiled_ee.seed, static_ee.seed);
  EXPECT_EQ(tiled_ee.distance, static_ee.distance);
}

TEST(ScheduleEquivalence, ChaseTiledMatchesStatic) {
  expect_schedules_equivalent<comb::ChaseFactory>(30);
}

TEST(ScheduleEquivalence, Alg515TiledMatchesStatic) {
  expect_schedules_equivalent<comb::Algorithm515Factory>(31);
}

TEST(ScheduleEquivalence, GosperTiledMatchesStatic) {
  expect_schedules_equivalent<comb::GosperFactory>(32);
}

TEST(ScheduleEquivalence, TinyTilesStillCoverTheExactBall) {
  // tile_seeds far below the default: many ragged tiles per shell, heavy
  // stealing — the accounting must stay exact.
  Xoshiro256 rng(33);
  const Seed256 base = Seed256::random(rng);
  const Seed256 absent = seed_at_distance(base, 9, 99);
  const auto r = search_scheduled<Sha1SeedHash, comb::ChaseFactory>(
      base, absent, SearchSchedule::kTiled, /*early_exit=*/false,
      /*threads=*/4, /*tile_seeds=*/64);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, 32897u);
}

TEST(ScheduleEquivalence, QuantumHookObservesEveryHashedSeed) {
  // The bench instrumentation hook must account for exactly the seeds the
  // result reports (minus the d-0 probe, which runs outside the hook).
  for (auto schedule : {SearchSchedule::kTiled, SearchSchedule::kStatic}) {
    Xoshiro256 rng(34);
    const Seed256 base = Seed256::random(rng);
    const Seed256 absent = seed_at_distance(base, 9, 100);
    comb::ChaseFactory factory;
    par::WorkerGroup pool(3);
    SearchOptions opts;
    opts.max_distance = 2;
    opts.num_threads = 3;
    opts.early_exit = false;
    opts.schedule = schedule;
    opts.timeout_s = 600.0;
    std::atomic<u64> hooked{0};
    opts.quantum_hook = [&](int, u64 seeds) { hooked += seeds; };
    const hash::Sha1SeedHash hash;
    const auto r =
        rbc_search<Sha1SeedHash>(base, hash(absent), factory, pool, opts, hash);
    EXPECT_EQ(r.seeds_hashed, 32897u);
    EXPECT_EQ(hooked.load(), r.seeds_hashed - 1);
  }
}

TEST(RbcSearch, AllIteratorsAgreeOnSeedsHashedWhenExhaustive) {
  Xoshiro256 rng(13);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = seed_at_distance(base, 5, 86);  // not findable at d=2
  const auto chase =
      search_for<Sha1SeedHash, comb::ChaseFactory>(base, truth, 2, 3);
  const auto alg515 =
      search_for<Sha1SeedHash, comb::Algorithm515Factory>(base, truth, 2, 3);
  const auto gosper =
      search_for<Sha1SeedHash, comb::GosperFactory>(base, truth, 2, 3);
  EXPECT_EQ(chase.seeds_hashed, 32897u);
  EXPECT_EQ(alg515.seeds_hashed, 32897u);
  EXPECT_EQ(gosper.seeds_hashed, 32897u);
}

}  // namespace
}  // namespace rbc
