// The observability layer: trace ring, session timelines, metrics export,
// flight recorder, and the serving-path stats hardening that rides with it.
//
// Suites, one per contract:
//   ObsRing             — TraceRing publication protocol: capacity rounding,
//                         wrap accounting, and snapshot consistency under
//                         concurrent writers (a TSan target).
//   ObsLifecycle        — stats()/export_metrics() are safe at ANY lifecycle
//                         point: pre-traffic, mid-traffic, post-shutdown.
//   ObsStatsConsistency — 1-shard and N-shard servers given identical
//                         workloads agree EXACTLY on the rank means (slices
//                         report integer sums; the aggregate divides once).
//   ObsTrace            — trace-off runs are byte-identical to traced ones
//                         in verdicts and seeds_hashed, and a traced d=2
//                         session's timeline is complete (solo and fused).
//   ObsFlightRecorder   — failed sessions are captured with their net_salt
//                         and REPLAY to the same failure.
//   ObsMetrics          — Prometheus/JSON golden output and the server's
//                         exported series.
//   ObsShellCacheTorn   — ShellMaskCache counters snapshot cleanly while
//                         shards churn the cache (a TSan target).
//
// Obs* runs under TSan in CI (scripts/ci.sh adds it to the tsan filter).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "rbc/candidate_stream.hpp"
#include "server/auth_server.hpp"

namespace rbc::server {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x0B;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

/// Identically seeded CA+RA stacks: two ObsFixtures built with the same
/// arguments run byte-identical protocol state, which is what the
/// trace-off/trace-on and 1-vs-N-shard equivalence suites compare against.
struct ObsFixture {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  explicit ObsFixture(int num_devices, int max_distance = 2,
                      u64 id_base = 41000) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = id_base + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0x0B5E);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = max_distance;
    ca_cfg.time_threshold_s = 600.0;
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, int injected_distance,
                                      u64 rng_salt) const {
    const std::size_t index = static_cast<std::size_t>(device_index);
    ClientConfig ccfg;
    ccfg.device_id = device_ids[index];
    ccfg.injected_distance = injected_distance;
    return std::make_unique<Client>(ccfg, devices[index].get(),
                                    ccfg.device_id ^ rng_salt);
  }
};

ServerConfig quiet_config(int shards) {
  ServerConfig cfg;
  cfg.num_shards = shards;
  cfg.max_queue_depth = 64;
  cfg.max_in_flight = 4;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.01;
  cfg.realtime_comm = false;
  return cfg;
}

obs::TraceEvent make_event(u64 session, obs::SpanKind kind, u64 value) {
  obs::TraceEvent e;
  e.session = session;
  e.device = session ^ 0xD0D0;
  e.kind = kind;
  e.detail = 7;
  e.value = value;
  e.wall_start_s = 1.0;
  e.wall_end_s = 2.0;
  e.vclock_s = 0.5;
  return e;
}

// ---------------------------------------------------------------------------
// ObsRing: the publication protocol.

TEST(ObsRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(obs::TraceRing(1).capacity(), 1u);
  EXPECT_EQ(obs::TraceRing(5).capacity(), 8u);
  EXPECT_EQ(obs::TraceRing(4096).capacity(), 4096u);
  EXPECT_THROW(obs::TraceRing(0), CheckFailure);
}

TEST(ObsRing, PushSnapshotRoundTripsFields) {
  obs::TraceRing ring(16);
  ring.push(make_event(100, obs::SpanKind::kAdmission, 1));
  ring.push(make_event(200, obs::SpanKind::kSearchShell, 2));
  ring.push(make_event(100, obs::SpanKind::kVerdict, 3));

  const std::vector<obs::TraceEvent> all = ring.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].seq, 0u);
  EXPECT_EQ(all[0].session, 100u);
  EXPECT_EQ(all[0].device, 100u ^ 0xD0D0);
  EXPECT_EQ(all[0].kind, obs::SpanKind::kAdmission);
  EXPECT_EQ(all[0].detail, 7u);
  EXPECT_EQ(all[0].value, 1u);
  EXPECT_DOUBLE_EQ(all[0].wall_start_s, 1.0);
  EXPECT_DOUBLE_EQ(all[0].wall_end_s, 2.0);
  EXPECT_DOUBLE_EQ(all[0].vclock_s, 0.5);

  const std::vector<obs::TraceEvent> s100 = ring.session_events(100);
  ASSERT_EQ(s100.size(), 2u);
  EXPECT_EQ(s100[0].kind, obs::SpanKind::kAdmission);
  EXPECT_EQ(s100[1].kind, obs::SpanKind::kVerdict);
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ObsRing, WrapKeepsNewestAndCountsDrops) {
  obs::TraceRing ring(8);
  for (u64 i = 0; i < 20; ++i)
    ring.push(make_event(i, obs::SpanKind::kQueueWait, i));
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const std::vector<obs::TraceEvent> all = ring.snapshot();
  ASSERT_EQ(all.size(), 8u);
  // Oldest-first publication order, and only the newest 8 survive the wrap.
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, 12u + i);
    EXPECT_EQ(all[i].session, 12u + i);
  }
}

TEST(ObsRing, SnapshotsConsistentUnderConcurrentWriters) {
  // The TSan case: four writers hammer one ring while a reader snapshots in
  // a loop. Every accepted record must be internally consistent — its
  // payload fields all come from the SAME push (value == session ^ tag),
  // never a mix of two writers' stores.
  obs::TraceRing ring(64);
  constexpr u64 kTag = 0x5EEDF00Du;
  constexpr int kWriters = 4;
  constexpr u64 kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const obs::TraceEvent& e : ring.snapshot()) {
        if (e.value != (e.session ^ kTag)) torn.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (u64 i = 0; i < kPerWriter; ++i) {
        const u64 session = (static_cast<u64>(w) << 32) | i;
        obs::TraceEvent e;
        e.session = session;
        e.kind = obs::SpanKind::kSearchShell;
        e.value = session ^ kTag;
        ring.push(e);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.recorded(), kWriters * kPerWriter);
  const std::vector<obs::TraceEvent> final_snap = ring.snapshot();
  EXPECT_EQ(final_snap.size(), ring.capacity());
  for (const obs::TraceEvent& e : final_snap)
    EXPECT_EQ(e.value, e.session ^ kTag);
}

TEST(ObsRing, DisabledSessionTraceIsInertAndFree) {
  obs::SessionTrace off;
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.now_s(), 0.0);
  // All hooks are no-ops with no ring to write to.
  off.span(obs::SpanKind::kSearchShell, 0.0, 1.0, 2, 3);
  off.span_ending_now(obs::SpanKind::kVerdict, 0.5);
  off.event(obs::SpanKind::kRetransmit, 1, 2);

  obs::TraceRing ring(4);
  obs::SessionTrace on(&ring, /*session=*/9, /*device=*/8, /*shard=*/1);
  EXPECT_TRUE(on.enabled());
  on.event(obs::SpanKind::kAdmission);
  ASSERT_EQ(ring.snapshot().size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].session, 9u);
  EXPECT_EQ(ring.snapshot()[0].shard, 1u);
}

// ---------------------------------------------------------------------------
// ObsLifecycle: snapshots never abort, whatever the server has(n't) done.

TEST(ObsLifecycle, SnapshotsSafeBeforeAnyTraffic) {
  ObsFixture f(1);
  ServerConfig cfg = quiet_config(4);
  cfg.fusion_enabled = true;
  cfg.trace_enabled = true;
  cfg.flight_recorder = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  // Empty reservoirs and zero denominators render the 0.0 sentinels.
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_DOUBLE_EQ(s.mean_session_s, 0.0);
  EXPECT_DOUBLE_EQ(s.p50_session_s, 0.0);
  EXPECT_DOUBLE_EQ(s.p95_session_s, 0.0);
  EXPECT_DOUBLE_EQ(s.lane_occupancy, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_hit_rank, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_canonical_rank, 0.0);

  const std::string prom = server.export_metrics(obs::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("rbc_sessions_submitted_total 0"), std::string::npos);
  const std::string json = server.export_metrics(obs::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"schema\": \"rbc.metrics.v1\""), std::string::npos);
  EXPECT_TRUE(server.trace_events().empty());
  ASSERT_NE(server.flight_recorder(), nullptr);
  EXPECT_EQ(server.flight_recorder()->total(), 0u);
}

TEST(ObsLifecycle, SnapshotsSafeAfterShutdown) {
  ObsFixture f(2);
  ServerConfig cfg = quiet_config(2);
  cfg.trace_enabled = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, 1, 0x11FE);
  ASSERT_TRUE(server.submit(client.get()).get().authenticated);
  server.shutdown();

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.authenticated, 1u);
  const std::string prom = server.export_metrics();
  EXPECT_NE(prom.find("rbc_sessions_authenticated_total 1"), std::string::npos);
  EXPECT_FALSE(server.trace_events().empty());
  // A post-shutdown submit is rejected but still snapshot-safe.
  auto late = f.make_client(1, 1, 0x11FF);
  EXPECT_FALSE(server.submit(late.get()).get().accepted);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ObsLifecycle, SnapshotsSafeMidTraffic) {
  // A poller thread scrapes stats/metrics/traces while sessions run — the
  // exporter must never observe a state it cannot render.
  ObsFixture f(8);
  ServerConfig cfg = quiet_config(2);
  cfg.trace_enabled = true;
  cfg.flight_recorder = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)server.stats();
      (void)server.export_metrics(obs::MetricsFormat::kPrometheus);
      (void)server.export_metrics(obs::MetricsFormat::kJson);
      (void)server.trace_events();
    }
  });

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < 16; ++i) {
    clients.push_back(f.make_client(i % 8, 1, 0xA0 + static_cast<u64>(i)));
    futures.push_back(server.submit(clients.back().get()));
  }
  u64 authenticated = 0;
  for (auto& fu : futures)
    if (fu.get().authenticated) ++authenticated;
  stop.store(true);
  poller.join();

  EXPECT_EQ(server.stats().completed, 16u);
  EXPECT_EQ(server.stats().authenticated, authenticated);
  EXPECT_GT(authenticated, 0u);
}

// ---------------------------------------------------------------------------
// ObsStatsConsistency: sharding must not perturb the aggregate rank means.

TEST(ObsStatsConsistency, RankMeansIdenticalAcrossShardCounts) {
  // Slices report integer rank SUMS; the aggregate divides once by the
  // total ranked count. A mean-of-per-shard-means would weight shards
  // equally regardless of how many sessions each served — this pins the
  // 1-shard and 4-shard servers to EXACT agreement on the same workload.
  constexpr int kDevices = 8;
  constexpr int kSessions = 16;
  ServerStats stats_by_shards[2];
  for (int variant = 0; variant < 2; ++variant) {
    ObsFixture f(kDevices);
    AuthServer server(quiet_config(variant == 0 ? 1 : 4), f.ca.get(), &f.ra);
    std::vector<std::unique_ptr<Client>> clients;
    std::vector<std::future<SessionOutcome>> futures;
    for (int i = 0; i < kSessions; ++i) {
      clients.push_back(
          f.make_client(i % kDevices, 1 + (i % 2), 0xBEE + static_cast<u64>(i)));
      futures.push_back(server.submit(clients.back().get(), /*budget_s=*/600.0,
                                      /*net_salt=*/0x5A17 + static_cast<u64>(i)));
    }
    for (auto& fu : futures) (void)fu.get();
    stats_by_shards[variant] = server.stats();
  }

  const ServerStats& one = stats_by_shards[0];
  const ServerStats& four = stats_by_shards[1];
  ASSERT_EQ(one.completed, static_cast<u64>(kSessions));
  ASSERT_EQ(four.completed, static_cast<u64>(kSessions));
  EXPECT_EQ(one.authenticated, four.authenticated);
  ASSERT_GT(one.ranked_sessions, 0u);
  EXPECT_EQ(one.ranked_sessions, four.ranked_sessions);
  EXPECT_DOUBLE_EQ(one.mean_hit_rank, four.mean_hit_rank);
  EXPECT_DOUBLE_EQ(one.mean_canonical_rank, four.mean_canonical_rank);
}

// ---------------------------------------------------------------------------
// ObsTrace: zero behavioral impact, complete timelines.

TEST(ObsTrace, TraceOffIsByteIdenticalToTraceOn) {
  // Identical fixtures, identical clients, identical per-session salts; the
  // only difference is the observability config. Verdicts and seeds_hashed
  // must match session for session, and the untraced server must have
  // recorded nothing.
  constexpr int kDevices = 6;
  constexpr int kSessions = 12;
  std::vector<SessionOutcome> outcomes[2];
  std::unique_ptr<AuthServer> traced_server;
  ObsFixture fixtures[2] = {ObsFixture(kDevices), ObsFixture(kDevices)};
  u64 untraced_events = 0;
  for (int variant = 0; variant < 2; ++variant) {
    ObsFixture& f = fixtures[variant];
    ServerConfig cfg = quiet_config(2);
    if (variant == 1) {
      cfg.trace_enabled = true;
      cfg.flight_recorder = true;
    }
    AuthServer server(cfg, f.ca.get(), &f.ra);
    std::vector<std::unique_ptr<Client>> clients;
    std::vector<std::future<SessionOutcome>> futures;
    for (int i = 0; i < kSessions; ++i) {
      clients.push_back(
          f.make_client(i % kDevices, 1 + (i % 2), 0xCAFE + static_cast<u64>(i)));
      futures.push_back(server.submit(clients.back().get(), /*budget_s=*/600.0,
                                      /*net_salt=*/0x900D + static_cast<u64>(i)));
    }
    for (auto& fu : futures) outcomes[variant].push_back(fu.get());
    if (variant == 0) untraced_events = server.trace_events().size();
  }

  EXPECT_EQ(untraced_events, 0u);
  ASSERT_EQ(outcomes[0].size(), outcomes[1].size());
  for (std::size_t i = 0; i < outcomes[0].size(); ++i) {
    const SessionOutcome& off = outcomes[0][i];
    const SessionOutcome& on = outcomes[1][i];
    EXPECT_EQ(off.authenticated, on.authenticated) << "session " << i;
    EXPECT_EQ(off.timed_out, on.timed_out) << "session " << i;
    EXPECT_EQ(off.transport_failed, on.transport_failed) << "session " << i;
    EXPECT_EQ(off.report.engine.result.seeds_hashed,
              on.report.engine.result.seeds_hashed)
        << "session " << i;
    EXPECT_EQ(off.report.engine.result.canonical_rank,
              on.report.engine.result.canonical_rank)
        << "session " << i;
  }
}

TEST(ObsTrace, SoloSessionTimelineIsComplete) {
  // One planted d=2 session on a 1-shard untraced-compute server: the
  // timeline must carry admission, queue wait, one span per shell actually
  // scanned (1 and 2 — d0 is hashed before the stream starts), and the
  // verdict whose value is the session's total seeds_hashed.
  ObsFixture f(1);
  ServerConfig cfg = quiet_config(1);
  cfg.trace_enabled = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, /*injected_distance=*/2, 0x7E57);
  const u64 salt = 0xDA7A;
  const SessionOutcome outcome =
      server.submit(client.get(), /*budget_s=*/600.0, salt).get();
  ASSERT_TRUE(outcome.authenticated);
  const u64 seeds_hashed = outcome.report.engine.result.seeds_hashed;
  ASSERT_GT(seeds_hashed, 1u);

  std::vector<obs::TraceEvent> timeline;
  for (const obs::TraceEvent& e : server.trace_events())
    if (e.session == salt) timeline.push_back(e);

  u64 admissions = 0, queue_waits = 0, verdicts = 0;
  std::set<u32> shells;
  u64 shell_hashed = 0;
  for (const obs::TraceEvent& e : timeline) {
    EXPECT_LE(e.wall_start_s, e.wall_end_s);
    EXPECT_EQ(e.device, f.device_ids[0]);
    EXPECT_EQ(e.shard, 0u);
    switch (e.kind) {
      case obs::SpanKind::kAdmission:
        ++admissions;
        EXPECT_EQ(e.detail, static_cast<u32>(RejectReason::kNone));
        break;
      case obs::SpanKind::kQueueWait:
        ++queue_waits;
        break;
      case obs::SpanKind::kSearchShell:
        shells.insert(e.detail);
        shell_hashed += e.value;
        break;
      case obs::SpanKind::kVerdict:
        ++verdicts;
        EXPECT_EQ(e.detail, static_cast<u32>(obs::Verdict::kAuthenticated));
        EXPECT_EQ(e.value, seeds_hashed);
        EXPECT_DOUBLE_EQ(e.vclock_s, outcome.report.comm_time_s);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(admissions, 1u);
  EXPECT_EQ(queue_waits, 1u);
  EXPECT_EQ(verdicts, 1u);
  EXPECT_EQ(shells, (std::set<u32>{1, 2}));
  // The shell spans account for every candidate except the d0 probe.
  EXPECT_EQ(shell_hashed, seeds_hashed - 1);
}

TEST(ObsTrace, FusedSessionTimelineCarriesLaneSpan) {
  // Same planted session through the fusion engine: the search is executed
  // by the shard's pump instead of the backend, so the timeline swaps the
  // per-shell spans for a fused-lane residency span — and the verdict must
  // be identical to the solo path's.
  ObsFixture f(1);
  ServerConfig cfg = quiet_config(1);
  cfg.trace_enabled = true;
  cfg.fusion_enabled = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, /*injected_distance=*/2, 0x7E57);
  const u64 salt = 0xF00D;
  const SessionOutcome outcome =
      server.submit(client.get(), /*budget_s=*/600.0, salt).get();
  ASSERT_TRUE(outcome.authenticated);
  ASSERT_EQ(server.stats().fused_sessions, 1u);

  u64 lane_spans = 0, verdicts = 0;
  for (const obs::TraceEvent& e : server.trace_events()) {
    if (e.session != salt) continue;
    if (e.kind == obs::SpanKind::kFusionLane) {
      ++lane_spans;
      // `value` counts dealt lane slots: at least every candidate hashed.
      EXPECT_GE(e.value, outcome.report.engine.result.seeds_hashed - 1);
      EXPECT_LE(e.wall_start_s, e.wall_end_s);
    }
    if (e.kind == obs::SpanKind::kVerdict) {
      ++verdicts;
      EXPECT_EQ(e.detail, static_cast<u32>(obs::Verdict::kAuthenticated));
      EXPECT_EQ(e.value, outcome.report.engine.result.seeds_hashed);
    }
  }
  EXPECT_EQ(lane_spans, 1u);
  EXPECT_EQ(verdicts, 1u);
}

TEST(ObsTrace, RejectedSubmissionLeavesAdmissionRecord) {
  ObsFixture f(2);
  ServerConfig cfg = quiet_config(1);
  cfg.trace_enabled = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);
  server.shutdown();

  auto client = f.make_client(0, 1, 0x0FF);
  const u64 salt = 0xBAD;
  EXPECT_FALSE(server.submit(client.get(), 600.0, salt).get().accepted);
  bool saw_reject = false;
  for (const obs::TraceEvent& e : server.trace_events()) {
    if (e.session == salt && e.kind == obs::SpanKind::kAdmission) {
      saw_reject = true;
      EXPECT_EQ(e.detail, static_cast<u32>(RejectReason::kShutdown));
    }
  }
  EXPECT_TRUE(saw_reject);
}

// ---------------------------------------------------------------------------
// ObsFlightRecorder: failures keep their black box and replay from it.

TEST(ObsFlightRecorder, BoundedRetentionEvictsOldest) {
  obs::FlightRecorder rec(/*max_records=*/2);
  for (u64 i = 0; i < 5; ++i) {
    obs::FlightRecord r;
    r.net_salt = i;
    r.reason = "auth_failed";
    rec.record(std::move(r));
  }
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.total(), 5u);
  const std::vector<obs::FlightRecord> kept = rec.records();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].net_salt, 3u);
  EXPECT_EQ(kept[1].net_salt, 4u);
}

TEST(ObsFlightRecorder, CapturesTransportFailureAndReplaysFromSalt) {
  // A total-loss link: every frame dropped, retransmits exhausted, the
  // session completes transport_failed. The recorder must hold its salt,
  // and resubmitting with that salt must reproduce the same failure.
  ObsFixture f(1);
  ServerConfig cfg = quiet_config(1);
  cfg.trace_enabled = true;
  cfg.flight_recorder = true;
  cfg.fault.drop_rate = 1.0;
  cfg.fault_seed = 0xC4A05;
  cfg.retry.max_attempts = 2;
  cfg.retry.timeout_s = 0.01;
  cfg.retry.max_timeout_s = 0.02;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, 1, 0x1CE);
  const u64 salt = 0xAB5A17;
  const SessionOutcome outcome =
      server.submit(client.get(), /*budget_s=*/600.0, salt).get();
  ASSERT_TRUE(outcome.transport_failed);
  EXPECT_EQ(outcome.net_salt, salt);

  ASSERT_NE(server.flight_recorder(), nullptr);
  const std::vector<obs::FlightRecord> records =
      server.flight_recorder()->records();
  ASSERT_EQ(records.size(), 1u);
  const obs::FlightRecord& r = records[0];
  EXPECT_EQ(r.net_salt, salt);
  EXPECT_EQ(r.device_id, f.device_ids[0]);
  EXPECT_EQ(r.fault_seed, cfg.fault_seed);
  EXPECT_EQ(r.reason, "transport_failure");
  EXPECT_GT(r.injected_faults, 0u);
  EXPECT_FALSE(r.timeline.empty());  // tracing was on: spans came along

  // The replay recipe from the record itself.
  auto replay_client = f.make_client(0, 1, 0x1CE);
  const SessionOutcome replay =
      server.submit(replay_client.get(), r.session_budget_s, r.net_salt).get();
  EXPECT_TRUE(replay.transport_failed);
  EXPECT_EQ(server.flight_recorder()->total(), 2u);

  const std::string dump = obs::FlightRecorder::format(r);
  EXPECT_NE(dump.find("transport_failure"), std::string::npos);
  EXPECT_NE(dump.find("net_salt"), std::string::npos);
  EXPECT_NE(dump.find("ab5a17"), std::string::npos);  // the replay key, hex
}

// ---------------------------------------------------------------------------
// ObsMetrics: golden output and the server's exported series.

TEST(ObsMetrics, PrometheusGolden) {
  obs::MetricsRegistry reg;
  reg.counter("rbc_demo_total", "Demo counter.", 42);
  reg.gauge("rbc_demo_depth", "Demo gauge.", 1.5);
  reg.gauge("rbc_demo_depth", "Demo gauge.", 3, {{"shard", "1"}});
  EXPECT_EQ(reg.series_count(), 3u);
  EXPECT_EQ(reg.prometheus(),
            "# HELP rbc_demo_total Demo counter.\n"
            "# TYPE rbc_demo_total counter\n"
            "rbc_demo_total 42\n"
            "# HELP rbc_demo_depth Demo gauge.\n"
            "# TYPE rbc_demo_depth gauge\n"
            "rbc_demo_depth 1.5\n"
            "rbc_demo_depth{shard=\"1\"} 3\n");
}

TEST(ObsMetrics, JsonGolden) {
  obs::MetricsRegistry reg;
  reg.counter("rbc_demo_total", "Demo counter.", 42);
  reg.gauge("rbc_demo_depth", "Demo gauge.", 3, {{"shard", "1"}});
  EXPECT_EQ(reg.json(),
            "{\n"
            "  \"schema\": \"rbc.metrics.v1\",\n"
            "  \"metrics\": {\n"
            "    \"rbc_demo_total\": 42,\n"
            "    \"rbc_demo_depth{shard=\\\"1\\\"}\": 3\n"
            "  }\n"
            "}\n");
}

TEST(ObsMetrics, RejectsTypeConfusionAcrossRegistrations) {
  obs::MetricsRegistry reg;
  reg.counter("rbc_demo_total", "Demo counter.", 1);
  EXPECT_THROW(reg.gauge("rbc_demo_total", "Demo counter.", 2), CheckFailure);
}

TEST(ObsMetrics, ServerExportMatchesStats) {
  ObsFixture f(4);
  ServerConfig cfg = quiet_config(2);
  cfg.trace_enabled = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(f.make_client(i % 4, 1, 0xE4 + static_cast<u64>(i)));
    futures.push_back(server.submit(clients.back().get()));
  }
  for (auto& fu : futures) (void)fu.get();

  const ServerStats s = server.stats();
  const std::string prom = server.export_metrics(obs::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("# TYPE rbc_sessions_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("rbc_sessions_submitted_total 8"), std::string::npos);
  EXPECT_NE(prom.find("rbc_sessions_completed_total 8"), std::string::npos);
  EXPECT_NE(prom.find("rbc_sessions_authenticated_total " +
                      std::to_string(s.authenticated)),
            std::string::npos);
  EXPECT_NE(prom.find("rbc_shards 2"), std::string::npos);
  // Per-shard gauges appear as labeled series for each shard.
  EXPECT_NE(prom.find("rbc_shard_queue_depth{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("rbc_shard_queue_depth{shard=\"1\"}"), std::string::npos);
  EXPECT_NE(prom.find("rbc_trace_events_recorded_total " +
                      std::to_string(s.trace_events_recorded)),
            std::string::npos);
  EXPECT_GT(s.trace_events_recorded, 0u);

  const std::string json = server.export_metrics(obs::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"schema\": \"rbc.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rbc_sessions_submitted_total\": 8"),
            std::string::npos);
  EXPECT_NE(json.find("\"rbc_shards\": 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ObsShellCacheTorn: counter snapshots race table churn (a TSan target).

TEST(ObsShellCacheTorn, StatsSnapshotCleanDuringChurn) {
  // Four "shards" churn small shell tables through the process-wide cache
  // (tiny capacity forces constant eviction) while the main thread snapshots
  // stats() in a loop. Everything is mutex-guarded by design — this pins
  // that under TSan and checks the counters stay coherent.
  ShellMaskCache::set_capacity(512);
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&stop, t] {
      const sim::IterAlgo algos[] = {sim::IterAlgo::kChase382,
                                     sim::IterAlgo::kGosper,
                                     sim::IterAlgo::kAlg515};
      // do-while: at least one fetch per churner even if the snapshot loop
      // finishes before this thread is first scheduled.
      int i = 0;
      do {
        const sim::IterAlgo algo = algos[(t + i) % 3];
        const int k = 1 + (i % 2);
        const int n_bits = 16 + 8 * ((t + i) % 3);
        auto table = ShellMaskCache::get(algo, k, n_bits);
        ASSERT_NE(table, nullptr);
        ++i;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const ShellMaskCache::Stats s = ShellMaskCache::stats();
    // Monotone counters and a bounded working set — a torn read of the
    // internals would show up as wildly inconsistent values here.
    EXPECT_LE(s.cached_masks, 512u + ShellMaskCache::kMaxTableMasks);
    EXPECT_GE(s.hits + s.misses, s.evictions);
  }
  stop.store(true);
  for (std::thread& t : churners) t.join();
  ShellMaskCache::set_capacity(ShellMaskCache::kDefaultCapacityMasks);

  const ShellMaskCache::Stats s = ShellMaskCache::stats();
  EXPECT_GT(s.hits + s.misses, 0u);
}

}  // namespace
}  // namespace rbc::server
