#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "combinatorics/combination.hpp"
#include "common/rng.hpp"

namespace rbc::comb {
namespace {

TEST(Combination, FirstIsIdentityPrefix) {
  const auto c = Combination::first(4);
  EXPECT_EQ(c.k(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c.position(i), i);
  EXPECT_TRUE(c.is_valid());
}

TEST(Combination, InitializerListValidation) {
  EXPECT_NO_THROW(Combination({0, 5, 255}));
  EXPECT_THROW(Combination({5, 5}), rbc::CheckFailure);     // not increasing
  EXPECT_THROW(Combination({5, 3}), rbc::CheckFailure);     // decreasing
  EXPECT_THROW(Combination({256}), rbc::CheckFailure);      // out of range
}

TEST(Combination, MaskRoundTrip) {
  const Combination c({1, 63, 64, 200});
  const Seed256 mask = c.to_mask();
  EXPECT_EQ(mask.popcount(), 4);
  EXPECT_TRUE(mask.bit(1));
  EXPECT_TRUE(mask.bit(63));
  EXPECT_TRUE(mask.bit(64));
  EXPECT_TRUE(mask.bit(200));
  EXPECT_EQ(Combination::from_mask(mask), c);
}

TEST(Combination, ApplyFlipsExactlyKBits) {
  rbc::Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  const Combination c({7, 100, 255});
  const Seed256 candidate = c.apply(base);
  EXPECT_EQ(hamming_distance(base, candidate), 3);
  // Applying twice restores the base seed.
  EXPECT_EQ(c.apply(candidate), base);
}

TEST(Combination, EmptyCombinationIsIdentity) {
  rbc::Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  EXPECT_EQ(Combination{}.apply(base), base);
}

TEST(Combination, ToStringFormatting) {
  EXPECT_EQ(Combination({1, 2, 10}).to_string(), "{1,2,10}");
  EXPECT_EQ(Combination{}.to_string(), "{}");
}

TEST(NextLexicographic, EnumeratesAllInOrder) {
  // n=7, k=3: expect exactly C(7,3)=35 combinations, strictly increasing in
  // lexicographic rank.
  const int n = 7, k = 3;
  Combination c = Combination::first(k);
  std::vector<Combination> all;
  do {
    all.push_back(c);
  } while (next_lexicographic(c, n));
  EXPECT_EQ(all.size(), 35u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(rank_lexicographic(all[i], n), static_cast<u128>(i));
    EXPECT_TRUE(all[i].is_valid(n));
  }
}

TEST(NextLexicographic, StopsAtLastCombination) {
  Combination c({253, 254, 255});
  EXPECT_FALSE(next_lexicographic(c));
  EXPECT_EQ(c, Combination({253, 254, 255}));
}

TEST(NextLexicographic, EmptyCombinationHasNoSuccessor) {
  Combination c;
  EXPECT_FALSE(next_lexicographic(c));
}

TEST(RankLexicographic, FirstAndLast) {
  EXPECT_EQ(rank_lexicographic(Combination::first(5)), 0u);
  const Combination last({251, 252, 253, 254, 255});
  EXPECT_EQ(rank_lexicographic(last), binomial128(256, 5) - 1);
}

TEST(RankColex, MatchesNumericMaskOrder) {
  // In colex order the rank ordering equals the numeric ordering of masks.
  const int n = 9, k = 4;
  std::vector<std::pair<Seed256, u128>> items;
  Combination c = Combination::first(k);
  do {
    items.emplace_back(c.to_mask(), rank_colexicographic(c));
  } while (next_lexicographic(c, n));
  ASSERT_EQ(items.size(), 126u);
  std::set<std::string> seen;
  for (const auto& [mask, rank] : items) {
    EXPECT_LT(rank, binomial128(n, k));
    seen.insert(u128_to_string(rank));
  }
  EXPECT_EQ(seen.size(), items.size());
  // Numeric comparison of masks must agree with colex rank comparison.
  for (std::size_t i = 1; i < items.size(); ++i) {
    for (std::size_t j = 0; j < i; j += 7) {
      EXPECT_EQ(items[i].first > items[j].first,
                items[i].second > items[j].second);
    }
  }
}

class ColexRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ColexRoundTrip, UnrankIsInverseOfRank) {
  const auto [n, k] = GetParam();
  const u128 total = binomial128(n, k);
  for (u128 r = 0; r < total; ++r) {
    const Combination c = unrank_colexicographic(r, k, n);
    EXPECT_TRUE(c.is_valid(n));
    EXPECT_EQ(rank_colexicographic(c), r);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSpaces, ColexRoundTrip,
                         ::testing::Values(std::pair{5, 1}, std::pair{6, 3},
                                           std::pair{8, 4}, std::pair{10, 2},
                                           std::pair{10, 5}, std::pair{12, 3}));

TEST(ColexUnrank, FullWidthSpace) {
  // Round-trip spot checks in the real 256-bit domain.
  rbc::Xoshiro256 rng(3);
  for (int k : {1, 2, 3, 5, 8}) {
    const u128 total = binomial128(256, k);
    for (int i = 0; i < 50; ++i) {
      const u128 r = static_cast<u128>(rng.next()) % total;
      const Combination c = unrank_colexicographic(r, k);
      EXPECT_EQ(rank_colexicographic(c), r);
      EXPECT_EQ(c.k(), k);
    }
  }
}

TEST(ColexUnrank, OutOfRangeRankRejected) {
  EXPECT_THROW(unrank_colexicographic(binomial128(8, 3), 3, 8),
               rbc::CheckFailure);
}

}  // namespace
}  // namespace rbc::comb
