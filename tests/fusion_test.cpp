// Cross-session lane fusion: equivalence and stress suites.
//
// The load-bearing property is the equivalence contract: for any admitted
// search, the fused path must report the SAME verdict, seed, distance and
// the EXACT same seeds_hashed as the backend's single-thread solo search —
// fusion is an execution substitution, not a semantic change. These tests
// pin that down candidate-by-candidate (stream order), lane-by-lane (the
// tagged batch kernel), search-by-search (solo vs fused over randomized
// concurrent mixes), and server-by-server (shard counts and chaos faults
// must not perturb verdicts when fusion is on).
//
// FusionEngine*/FusionServer* run under TSan in CI: driver threads block on
// futures while one pump deals their streams into shared batches, which
// exercises the admission/backfill/retire seams concurrently.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "combinatorics/chase382.hpp"
#include "rbc/candidate_stream.hpp"
#include "server/auth_server.hpp"
#include "server/fusion_engine.hpp"

namespace rbc::server {
namespace {

constexpr u64 kBallD2 = 1 + 256 + 32640;  // |ball(d<=2)| over 256 bits

Seed256 random_seed(u64 salt) {
  Xoshiro256 rng(salt);
  return Seed256::random(rng);
}

/// A mask with exactly `k` distinct bits set, drawn from `salt`.
Seed256 mask_of_weight(int k, u64 salt) {
  Xoshiro256 rng(salt);
  Seed256 mask;
  while (mask.popcount() < k)
    mask.set_bit(static_cast<int>(rng.next() % 256));
  return mask;
}

Bytes digest_of(const Seed256& s, hash::HashAlgo algo) {
  if (algo == hash::HashAlgo::kSha1) {
    const hash::Digest160 d = hash::sha1_seed(s);
    return Bytes(d.bytes.begin(), d.bytes.end());
  }
  const hash::Digest256 d = hash::sha3_256_seed(s);
  return Bytes(d.bytes.begin(), d.bytes.end());
}

SearchOptions small_search_opts() {
  SearchOptions opts;
  opts.max_distance = 2;
  opts.early_exit = true;
  opts.timeout_s = 600.0;
  opts.num_threads = 1;
  return opts;
}

// ---------------------------------------------------------------------------
// Stream contract
// ---------------------------------------------------------------------------

TEST(FusionStream, TableStreamReproducesBallStreamOrder) {
  // The cached-table stream must emit the byte-identical candidate sequence
  // the factory-walking stream emits, regardless of the fill granularity —
  // resumability cannot perturb the enumeration order.
  const Seed256 s_init = random_seed(0xF051);
  comb::ChaseFactory factory;
  BallStream<comb::ChaseFactory> reference(s_init, 2, factory);
  TableCandidateStream table(s_init, 2, sim::IterAlgo::kChase382);

  std::vector<Seed256> want;
  std::array<Seed256, 64> buf;
  while (std::size_t n = reference.fill(buf.data(), buf.size()))
    want.insert(want.end(), buf.begin(), buf.begin() + n);
  ASSERT_EQ(want.size(), kBallD2);

  std::vector<Seed256> got;
  std::size_t ask = 1;  // ragged asks: 1, 2, 3, ... wraps shell boundaries
  while (std::size_t n = table.fill(buf.data(), (ask % 63) + 1)) {
    got.insert(got.end(), buf.begin(), buf.begin() + n);
    ++ask;
  }
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(table.exhausted());
  EXPECT_EQ(table.position(), kBallD2);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "candidate " << i;
}

TEST(FusionStream, FillsNeverCrossShellBoundaries) {
  const Seed256 s_init = random_seed(0xF052);
  TableCandidateStream stream(s_init, 2, sim::IterAlgo::kChase382);
  std::array<Seed256, 48> buf;

  // First fill emits exactly the d0 candidate.
  ASSERT_EQ(stream.fill(buf.data(), buf.size()), 1u);
  EXPECT_EQ(stream.last_shell(), 0);
  EXPECT_EQ(buf[0], s_init);

  u64 per_shell[3] = {1, 0, 0};
  int prev_shell = 0;
  while (std::size_t n = stream.fill(buf.data(), buf.size())) {
    const int shell = stream.last_shell();
    ASSERT_GE(shell, prev_shell) << "shells must be visited in order";
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ((buf[i] ^ s_init).popcount(), shell)
          << "fill mixed candidates from different shells";
    per_shell[shell] += n;
    prev_shell = shell;
  }
  EXPECT_EQ(per_shell[1], 256u);
  EXPECT_EQ(per_shell[2], 32640u);
}

// ---------------------------------------------------------------------------
// Tagged batch kernel
// ---------------------------------------------------------------------------

TEST(FusionBatch, TaggedBlockPrefiltersPerLaneTargets) {
  // Lanes from two different "streams" in one block: the hit mask must
  // flag each planted match against ITS OWN stream's target head, and the
  // digests must equal the scalar hash lane by lane.
  const Seed256 a = random_seed(0xAB01);
  const Seed256 b = random_seed(0xAB02);
  const hash::Digest256 target_a = hash::sha3_256_seed(a);
  const hash::Digest256 target_b = hash::sha3_256_seed(b);
  u32 heads[2];
  std::memcpy(&heads[0], target_a.bytes.data(), sizeof(u32));
  std::memcpy(&heads[1], target_b.bytes.data(), sizeof(u32));

  std::array<Seed256, 8> seeds;
  std::array<u16, 8> tags;
  for (std::size_t i = 0; i < 8; ++i) {
    seeds[i] = random_seed(0x9000 + i);
    tags[i] = static_cast<u16>(i % 2);
  }
  seeds[3] = b;  // planted: stream 1's match in a stream-1 lane
  seeds[6] = a;  // planted: stream 0's match in a stream-0 lane
  tags[3] = 1;
  tags[6] = 0;

  std::array<hash::Digest256, 8> digests;
  const u64 hits = hash::hash_seed_block_tagged(
      hash::Sha3BatchSeedHash{}, seeds.data(), 8, tags.data(), heads,
      digests.data());
  EXPECT_NE(hits & (u64{1} << 3), 0u);
  EXPECT_NE(hits & (u64{1} << 6), 0u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(digests[i], hash::sha3_256_seed(seeds[i])) << "lane " << i;
  EXPECT_EQ(digests[3], target_b);
  EXPECT_EQ(digests[6], target_a);
}

// ---------------------------------------------------------------------------
// Solo vs fused equivalence
// ---------------------------------------------------------------------------

struct SoloBaseline {
  std::unique_ptr<SearchBackend> backend;
  SoloBaseline() {
    EngineConfig cfg;
    cfg.host_threads = 1;  // the contract is against the 1-thread search
    backend = make_backend("cpu", cfg);
  }
  EngineReport run(const Seed256& s_init, const Bytes& digest,
                   hash::HashAlgo algo, const SearchOptions& opts) {
    return backend->search(s_init, ByteSpan(digest), algo, opts, nullptr);
  }
};

void expect_equivalent(const EngineReport& solo, const EngineReport& fused,
                       const char* what) {
  EXPECT_EQ(solo.result.found, fused.result.found) << what;
  EXPECT_EQ(solo.result.seeds_hashed, fused.result.seeds_hashed) << what;
  EXPECT_EQ(solo.result.timed_out, fused.result.timed_out) << what;
  if (solo.result.found) {
    EXPECT_EQ(solo.result.seed, fused.result.seed) << what;
    EXPECT_EQ(solo.result.distance, fused.result.distance) << what;
  }
}

TEST(FusionEngine, SoloAndFusedAgreeOnPlantedMatches) {
  SoloBaseline solo;
  FusionEngine engine;
  const SearchOptions opts = small_search_opts();
  const hash::HashAlgo algos[] = {hash::HashAlgo::kSha1,
                                  hash::HashAlgo::kSha3_256};
  for (hash::HashAlgo algo : algos) {
    for (int d = 0; d <= 2; ++d) {
      const Seed256 s_init = random_seed(0x5EED0 + static_cast<u64>(d));
      const Seed256 planted =
          s_init ^ mask_of_weight(d, 0xFACE + static_cast<u64>(d));
      const Bytes digest = digest_of(planted, algo);
      const EngineReport want = solo.run(s_init, digest, algo, opts);
      ASSERT_TRUE(want.result.found);
      ASSERT_EQ(want.result.distance, d);
      auto fused =
          engine.try_search(s_init, ByteSpan(digest), algo, opts, nullptr);
      ASSERT_TRUE(fused.has_value());
      expect_equivalent(want, *fused, "planted match");
    }
  }
}

TEST(FusionEngine, SoloAndFusedAgreeOnMiss) {
  SoloBaseline solo;
  FusionEngine engine;
  const SearchOptions opts = small_search_opts();
  const Seed256 s_init = random_seed(0x5EED9);
  // A target from outside the ball: both paths must exhaust all 32 897
  // candidates and report the full visit count.
  const Bytes digest =
      digest_of(s_init ^ mask_of_weight(7, 0xBEEF), hash::HashAlgo::kSha3_256);
  const EngineReport want =
      solo.run(s_init, digest, hash::HashAlgo::kSha3_256, opts);
  ASSERT_FALSE(want.result.found);
  ASSERT_EQ(want.result.seeds_hashed, kBallD2);
  auto fused = engine.try_search(s_init, ByteSpan(digest),
                                 hash::HashAlgo::kSha3_256, opts, nullptr);
  ASSERT_TRUE(fused.has_value());
  expect_equivalent(want, *fused, "miss");
}

TEST(FusionEngine, ConcurrentRandomMixMatchesSoloExactly) {
  // The headline equivalence: a randomized mix of concurrent sessions —
  // both algorithms, planted matches at d0/d1/d2 (ragged tails, mid-batch
  // early exit with same-batch backfill) and full-ball misses — must each
  // retire with the solo verdict AND the solo seeds_hashed, while genuinely
  // sharing batches (the engine sees them all in flight at once).
  constexpr int kSessions = 24;
  SoloBaseline solo;
  FusionEngine engine;
  const SearchOptions opts = small_search_opts();

  struct Case {
    Seed256 s_init;
    Bytes digest;
    hash::HashAlgo algo;
    EngineReport want;
  };
  std::vector<Case> cases;
  for (int i = 0; i < kSessions; ++i) {
    Case c;
    c.s_init = random_seed(0xA11CE + static_cast<u64>(i));
    c.algo = (i % 3 == 0) ? hash::HashAlgo::kSha1 : hash::HashAlgo::kSha3_256;
    const int kind = i % 5;  // 0..2: planted at d=kind; 3,4: miss
    const int weight = kind <= 2 ? kind : 9;
    c.digest = digest_of(
        c.s_init ^ mask_of_weight(weight, 0xD00D + static_cast<u64>(i)),
        c.algo);
    c.want = solo.run(c.s_init, c.digest, c.algo, opts);
    cases.push_back(std::move(c));
  }

  std::vector<std::optional<EngineReport>> fused(kSessions);
  std::vector<std::thread> drivers;
  for (int i = 0; i < kSessions; ++i) {
    drivers.emplace_back([&, i] {
      const Case& c = cases[static_cast<unsigned>(i)];
      fused[static_cast<unsigned>(i)] = engine.try_search(
          c.s_init, ByteSpan(c.digest), c.algo, opts, nullptr);
    });
  }
  for (auto& t : drivers) t.join();

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(fused[static_cast<unsigned>(i)].has_value()) << "session " << i;
    expect_equivalent(cases[static_cast<unsigned>(i)].want,
                      *fused[static_cast<unsigned>(i)], "concurrent mix");
  }

  const FusionStats stats = engine.stats();
  EXPECT_EQ(stats.fused_sessions, static_cast<u64>(kSessions));
  EXPECT_GT(stats.batch_count, 0u);
  EXPECT_LE(stats.lanes_filled, stats.lanes_issued);
  EXPECT_GT(stats.lanes_filled, 0u);
}

TEST(FusionEngine, PreExpiredDeadlineCountsExactlyTheBaseSeed) {
  // A session whose budget is already gone still hashes S_init before the
  // first deadline poll — on BOTH paths — so seeds_hashed is exactly 1.
  SoloBaseline solo;
  FusionEngine engine;
  const SearchOptions opts = small_search_opts();
  const Seed256 s_init = random_seed(0xDEAD1);
  const Bytes digest =
      digest_of(s_init ^ mask_of_weight(6, 0x0DD), hash::HashAlgo::kSha3_256);

  par::SearchContext solo_ctx = par::SearchContext::with_budget(0.0);
  const EngineReport want = solo.backend->search(
      s_init, ByteSpan(digest), hash::HashAlgo::kSha3_256, opts, &solo_ctx);
  ASSERT_EQ(want.result.seeds_hashed, 1u);
  ASSERT_TRUE(want.result.timed_out);

  par::SearchContext fused_ctx = par::SearchContext::with_budget(0.0);
  auto fused = engine.try_search(s_init, ByteSpan(digest),
                                 hash::HashAlgo::kSha3_256, opts, &fused_ctx);
  ASSERT_TRUE(fused.has_value());
  expect_equivalent(want, *fused, "pre-expired deadline");
}

TEST(FusionEngine, CancelledSessionRetiresAsCancelled) {
  FusionEngine engine;
  const SearchOptions opts = small_search_opts();
  const Seed256 s_init = random_seed(0xCA9CE1);
  const Bytes digest =
      digest_of(s_init ^ mask_of_weight(5, 0x123), hash::HashAlgo::kSha1);
  par::SearchContext ctx;
  ctx.cancel();
  auto fused = engine.try_search(s_init, ByteSpan(digest),
                                 hash::HashAlgo::kSha1, opts, &ctx);
  ASSERT_TRUE(fused.has_value());
  EXPECT_FALSE(fused->result.found);
  EXPECT_TRUE(fused->result.cancelled);
  EXPECT_FALSE(fused->result.timed_out);
  EXPECT_EQ(fused->result.seeds_hashed, 1u);  // d0 precedes the first poll
}

TEST(FusionEngine, MidStreamDeadlineExpiryStaysSane) {
  // Wall-clock expiry mid-ball cannot be byte-equal to a solo run (the
  // clock decides where each path stops), so assert the verdict envelope:
  // either the miss completed with the full count, or it timed out having
  // visited a prefix of the ball.
  FusionEngine engine;
  SearchOptions opts = small_search_opts();
  const Seed256 s_init = random_seed(0x71AE0);
  const Bytes digest =
      digest_of(s_init ^ mask_of_weight(8, 0x456), hash::HashAlgo::kSha3_256);
  par::SearchContext ctx = par::SearchContext::with_budget(200e-6);
  auto fused = engine.try_search(s_init, ByteSpan(digest),
                                 hash::HashAlgo::kSha3_256, opts, &ctx);
  ASSERT_TRUE(fused.has_value());
  EXPECT_FALSE(fused->result.found);
  EXPECT_GE(fused->result.seeds_hashed, 1u);
  EXPECT_LE(fused->result.seeds_hashed, kBallD2);
  if (!fused->result.timed_out)
    EXPECT_EQ(fused->result.seeds_hashed, kBallD2);
}

TEST(FusionEngine, DeclinesEverythingOutsideTheContract) {
  FusionEngine engine;
  const Seed256 s_init = random_seed(0xDEC11);
  const Bytes digest = digest_of(s_init, hash::HashAlgo::kSha3_256);
  const auto algo = hash::HashAlgo::kSha3_256;

  SearchOptions exhaustive = small_search_opts();
  exhaustive.early_exit = false;  // exhaustive runs keep the private loop
  EXPECT_FALSE(
      engine.try_search(s_init, ByteSpan(digest), algo, exhaustive, nullptr)
          .has_value());

  SearchOptions wide = small_search_opts();
  wide.num_threads = 2;  // equivalence is against the 1-thread search
  EXPECT_FALSE(engine.try_search(s_init, ByteSpan(digest), algo, wide, nullptr)
                   .has_value());

  SearchOptions big = small_search_opts();
  big.max_distance = 3;  // ball(d<=3) is ~2.8M candidates, over threshold
  EXPECT_FALSE(engine.try_search(s_init, ByteSpan(digest), algo, big, nullptr)
                   .has_value());

  engine.shutdown();
  EXPECT_FALSE(engine.try_search(s_init, ByteSpan(digest), algo,
                                 small_search_opts(), nullptr)
                   .has_value());

  EXPECT_EQ(engine.stats().declined, 4u);
  EXPECT_EQ(engine.stats().fused_sessions, 0u);
}

// ---------------------------------------------------------------------------
// Server integration
// ---------------------------------------------------------------------------

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

struct FusionServerFixture {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  explicit FusionServerFixture(int num_devices, u64 id_base) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = id_base + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = 2;
    ca_cfg.time_threshold_s = 600.0;
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, int injected_distance,
                                      u64 rng_salt) const {
    const std::size_t index = static_cast<std::size_t>(device_index);
    ClientConfig ccfg;
    ccfg.device_id = device_ids[index];
    ccfg.injected_distance = injected_distance;
    return std::make_unique<Client>(ccfg, devices[index].get(),
                                    ccfg.device_id ^ rng_salt);
  }
};

TEST(FusionServer, FusedBurstAuthenticatesAndReportsOccupancy) {
  constexpr int kSessions = 16;
  FusionServerFixture f(kSessions, /*id_base=*/4200);
  ServerConfig cfg;
  cfg.max_queue_depth = kSessions;
  cfg.max_in_flight = kSessions;  // deep overlap: all streams fuse at once
  cfg.session_budget_s = 600.0;
  cfg.fusion_enabled = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(i, /*injected_distance=*/2, 0xF00D));
    futures.push_back(server.submit(clients.back().get()));
  }
  for (int i = 0; i < kSessions; ++i) {
    const SessionOutcome outcome = futures[static_cast<unsigned>(i)].get();
    ASSERT_TRUE(outcome.accepted) << "session " << i;
    EXPECT_TRUE(outcome.authenticated) << "session " << i;
    const auto registered = f.ra.lookup(outcome.device_id);
    ASSERT_TRUE(registered.has_value());
    EXPECT_EQ(*registered, clients[static_cast<unsigned>(i)]->derive_public_key(
                               f.ca->config().salt));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.authenticated, static_cast<u64>(kSessions));
  // Every session's d<=2 search fits under the fusion threshold, so every
  // session fuses; each client submits one digest per protocol run.
  EXPECT_EQ(stats.fused_sessions, static_cast<u64>(kSessions));
  EXPECT_GT(stats.fusion_batches, 0u);
  EXPECT_LE(stats.fusion_lanes_filled, stats.fusion_lanes_issued);
  EXPECT_GT(stats.lane_occupancy, 0.0);
  EXPECT_LE(stats.lane_occupancy, 1.0);
}

TEST(FusionServer, FusionOffLeavesStatsZeroAndVerdictsIntact) {
  constexpr int kSessions = 6;
  FusionServerFixture f(kSessions, /*id_base=*/4300);
  ServerConfig cfg;
  cfg.max_queue_depth = kSessions;
  cfg.max_in_flight = 2;
  cfg.session_budget_s = 600.0;
  cfg.fusion_enabled = false;  // the seed-default path, bit for bit
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(i, 1, 0xB0B0));
    futures.push_back(server.submit(clients.back().get()));
  }
  for (auto& fut : futures) {
    const SessionOutcome outcome = fut.get();
    ASSERT_TRUE(outcome.accepted);
    EXPECT_TRUE(outcome.authenticated);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.fused_sessions, 0u);
  EXPECT_EQ(stats.fusion_batches, 0u);
  EXPECT_EQ(stats.fusion_lanes_issued, 0u);
  EXPECT_EQ(stats.lane_occupancy, 0.0);
}

TEST(FusionServer, SingleAndFourShardFusedServersAgreeUnderChaos) {
  // PR-7's shard-layout invariance must survive fusion: with explicit
  // per-session salts the fault streams are layout-independent, and the
  // fused search changes no verdict — so a 1-shard and a 4-shard fused
  // server agree session by session even on a lossy link.
  constexpr int kDevices = 12;
  net::FaultConfig faults;
  faults.drop_rate = 0.4;
  faults.corrupt_rate = 0.1;
  faults.duplicate_rate = 0.1;

  auto run_with_shards = [&](int num_shards) {
    FusionServerFixture f(kDevices, /*id_base=*/4400);
    ServerConfig cfg;
    cfg.num_shards = num_shards;
    cfg.max_queue_depth = 64;
    cfg.max_in_flight = num_shards;
    cfg.session_budget_s = 600.0;
    cfg.per_message_latency_s = 0.0;
    cfg.fault = faults;
    cfg.fault_seed = 0x5A17;
    cfg.retry.max_attempts = 2;
    cfg.retry.timeout_s = 0.01;
    cfg.retry.max_timeout_s = 0.04;
    cfg.fusion_enabled = true;
    AuthServer server(cfg, f.ca.get(), &f.ra);
    std::vector<SessionOutcome> outcomes;
    for (int i = 0; i < kDevices; ++i) {
      auto client = f.make_client(i, 1, 0xE1);
      outcomes.push_back(
          server.submit(client.get(), 600.0, 0xAB00 + static_cast<u64>(i))
              .get());
    }
    return outcomes;
  };

  const auto single = run_with_shards(1);
  const auto sharded = run_with_shards(4);
  ASSERT_EQ(single.size(), sharded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].authenticated, sharded[i].authenticated)
        << "session " << i;
    EXPECT_EQ(single[i].transport_failed, sharded[i].transport_failed)
        << "session " << i;
    EXPECT_EQ(single[i].reject_reason, sharded[i].reject_reason)
        << "session " << i;
    EXPECT_EQ(single[i].report.link.retransmits,
              sharded[i].report.link.retransmits)
        << "session " << i;
  }
}

}  // namespace
}  // namespace rbc::server
