#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/ring.hpp"

namespace rbc::crypto {
namespace {

Poly random_poly(Xoshiro256& rng, u32 q) {
  Poly p;
  for (auto& c : p.c) c = static_cast<u32>(rng.next_below(q));
  return p;
}

TEST(PrimitiveRoot, DilithiumModulusHasRoot) {
  const u32 psi = find_primitive_root_2n(8380417, 256);
  ASSERT_NE(psi, 0u);
  // psi^256 == -1 and psi^512 == 1 (mod q).
  u64 p = 1;
  for (int i = 0; i < 256; ++i) p = p * psi % 8380417;
  EXPECT_EQ(p, 8380416u);
  for (int i = 0; i < 256; ++i) p = p * psi % 8380417;
  EXPECT_EQ(p, 1u);
}

TEST(PrimitiveRoot, PowerOfTwoModulusHasNone) {
  EXPECT_EQ(find_primitive_root_2n(8192, 256), 0u);
}

TEST(PolyRing, NttAvailabilityMatchesModulus) {
  EXPECT_TRUE(PolyRing(8380417).ntt_available());
  EXPECT_FALSE(PolyRing(8192).ntt_available());
}

TEST(PolyRing, AddSubRoundTrip) {
  PolyRing ring(8380417);
  Xoshiro256 rng(1);
  const Poly a = random_poly(rng, ring.q());
  const Poly b = random_poly(rng, ring.q());
  EXPECT_EQ(ring.sub(ring.add(a, b), b), a);
  EXPECT_EQ(ring.sub(a, a), Poly{});
}

TEST(PolyRing, SchoolbookNegacyclicWrap) {
  // (X^255) * (X) = X^256 = -1: coefficient 0 becomes q-1.
  PolyRing ring(97);
  Poly a{}, b{};
  a.c[255] = 1;
  b.c[1] = 1;
  const Poly r = ring.mul_schoolbook(a, b);
  EXPECT_EQ(r.c[0], 96u);
  for (int i = 1; i < kRingDegree; ++i) EXPECT_EQ(r.c[static_cast<unsigned>(i)], 0u);
}

TEST(PolyRing, MultiplicationByOneIsIdentity) {
  for (u32 q : {8380417u, 8192u}) {
    PolyRing ring(q);
    Xoshiro256 rng(2);
    const Poly a = random_poly(rng, q);
    Poly one{};
    one.c[0] = 1;
    EXPECT_EQ(ring.mul(a, one), a) << "q=" << q;
  }
}

TEST(PolyRing, NttMatchesSchoolbook) {
  PolyRing ring(8380417);
  ASSERT_TRUE(ring.ntt_available());
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Poly a = random_poly(rng, ring.q());
    const Poly b = random_poly(rng, ring.q());
    EXPECT_EQ(ring.mul(a, b), ring.mul_schoolbook(a, b)) << "trial " << trial;
  }
}

TEST(PolyRing, MultiplicationIsCommutative) {
  PolyRing ring(8192);
  Xoshiro256 rng(4);
  const Poly a = random_poly(rng, ring.q());
  const Poly b = random_poly(rng, ring.q());
  EXPECT_EQ(ring.mul(a, b), ring.mul(b, a));
}

TEST(PolyRing, MultiplicationDistributesOverAddition) {
  PolyRing ring(8380417);
  Xoshiro256 rng(5);
  const Poly a = random_poly(rng, ring.q());
  const Poly b = random_poly(rng, ring.q());
  const Poly c = random_poly(rng, ring.q());
  EXPECT_EQ(ring.mul(a, ring.add(b, c)),
            ring.add(ring.mul(a, b), ring.mul(a, c)));
}

TEST(PolyRing, RoundShift) {
  PolyRing ring(8192);
  Poly a{};
  a.c[0] = 0;     // -> 0
  a.c[1] = 3;     // +4 >> 3 = 0
  a.c[2] = 4;     // +4 >> 3 = 1
  a.c[3] = 8191;  // +4 >> 3 = 1024
  const Poly r = ring.round_shift(a, 3);
  EXPECT_EQ(r.c[0], 0u);
  EXPECT_EQ(r.c[1], 0u);
  EXPECT_EQ(r.c[2], 1u);
  EXPECT_EQ(r.c[3], 1024u);
}

TEST(PolyRing, SampleUniformInRangeAndDeterministic) {
  PolyRing ring(8380417);
  hash::Shake128 xof1, xof2;
  const u8 seed[4] = {1, 2, 3, 4};
  xof1.absorb(ByteSpan{seed, 4});
  xof2.absorb(ByteSpan{seed, 4});
  const Poly a = ring.sample_uniform(xof1);
  const Poly b = ring.sample_uniform(xof2);
  EXPECT_EQ(a, b);
  for (u32 c : a.c) EXPECT_LT(c, ring.q());
  // Coefficients should span a wide range (not constant).
  u32 mn = ~0u, mx = 0;
  for (u32 c : a.c) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_GT(mx - mn, ring.q() / 4);
}

TEST(PolyRing, SampleSmallWithinEta) {
  PolyRing ring(8380417);
  hash::Shake256 xof;
  const u8 seed[1] = {9};
  xof.absorb(ByteSpan{seed, 1});
  const int eta = 4;
  const Poly s = ring.sample_small(xof, eta);
  for (u32 c : s.c) {
    const bool small_pos = c <= static_cast<u32>(eta);
    const bool small_neg = c >= ring.q() - static_cast<u32>(eta);
    EXPECT_TRUE(small_pos || small_neg) << "coefficient " << c;
  }
}

TEST(PolyRing, SampleSmallIsRoughlyCentered) {
  PolyRing ring(8380417);
  hash::Shake256 xof;
  const u8 seed[1] = {10};
  xof.absorb(ByteSpan{seed, 1});
  double sum = 0;
  for (int i = 0; i < 8; ++i) {
    const Poly s = ring.sample_small(xof, 4);
    for (u32 c : s.c)
      sum += (c <= 4) ? static_cast<double>(c)
                      : -static_cast<double>(ring.q() - c);
  }
  EXPECT_NEAR(sum / (8 * 256), 0.0, 0.2);
}

TEST(PolyRing, RejectsTinyModulus) {
  EXPECT_THROW(PolyRing(1), rbc::CheckFailure);
}

}  // namespace
}  // namespace rbc::crypto
