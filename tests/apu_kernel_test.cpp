// Bit-sliced APU kernels: 64-lane SHA-1 and SHA3-256 must agree bit-for-bit
// with the scalar implementations, and their column-cycle counts must be in
// the right relationship with the paper-calibrated APU PE-cycle costs.
#include <gtest/gtest.h>

#include "apu/keccak_kernel.hpp"
#include "apu/sha1_kernel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"
#include "sim/calibration.hpp"

namespace rbc::apu {
namespace {

std::array<Seed256, kLanes> random_seeds(u64 rng_seed) {
  Xoshiro256 rng(rng_seed);
  std::array<Seed256, kLanes> seeds;
  for (auto& s : seeds) s = Seed256::random(rng);
  return seeds;
}

// --- transposition ------------------------------------------------------------

TEST(Bitslice, Transpose32RoundTrip) {
  Xoshiro256 rng(1);
  std::array<u32, kLanes> lanes;
  for (auto& v : lanes) v = static_cast<u32>(rng.next());
  EXPECT_EQ(untranspose32(transpose32(lanes)), lanes);
}

TEST(Bitslice, Transpose64RoundTrip) {
  Xoshiro256 rng(2);
  std::array<u64, kLanes> lanes;
  for (auto& v : lanes) v = rng.next();
  EXPECT_EQ(untranspose64(transpose64(lanes)), lanes);
}

TEST(Bitslice, Broadcast32SetsWholePlanes) {
  const Word32 planes = broadcast32(0x80000001u);
  EXPECT_EQ(planes[0], ~0ULL);
  EXPECT_EQ(planes[31], ~0ULL);
  for (int b = 1; b < 31; ++b) EXPECT_EQ(planes[static_cast<unsigned>(b)], 0u);
}

// --- vector unit ----------------------------------------------------------------

TEST(VectorUnitOps, Add32MatchesScalarAddition) {
  Xoshiro256 rng(3);
  VectorUnit vu;
  std::array<u32, kLanes> a_lanes, b_lanes;
  for (int l = 0; l < kLanes; ++l) {
    a_lanes[static_cast<unsigned>(l)] = static_cast<u32>(rng.next());
    b_lanes[static_cast<unsigned>(l)] = static_cast<u32>(rng.next());
  }
  const Word32 sum = vu.add32(transpose32(a_lanes), transpose32(b_lanes));
  const auto out = untranspose32(sum);
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(out[static_cast<unsigned>(l)],
              a_lanes[static_cast<unsigned>(l)] +
                  b_lanes[static_cast<unsigned>(l)]);
  }
  // Bit-serial adder cost: 32 sum xors + 31 carry stages of 3 ops + 32 ab
  // xors (shared) = documented 5-ops-per-bit shape.
  EXPECT_EQ(vu.counts().total(), 32u + 32u + 31u * 3u);
}

TEST(VectorUnitOps, RotationIsFreeAndCorrect) {
  Xoshiro256 rng(4);
  VectorUnit vu;
  std::array<u32, kLanes> lanes;
  for (auto& v : lanes) v = static_cast<u32>(rng.next());
  const auto rotated = untranspose32(rotl32_planes(transpose32(lanes), 7));
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(rotated[static_cast<unsigned>(l)],
              std::rotl(lanes[static_cast<unsigned>(l)], 7));
  }
  EXPECT_EQ(vu.counts().total(), 0u) << "plane renaming must cost nothing";
}

TEST(VectorUnitOps, ChiPrimitive) {
  VectorUnit vu;
  EXPECT_EQ(vu.vchi(0b1100, 0b1010, 0b0110), 0b1100 ^ (~0b1010u & 0b0110));
  EXPECT_EQ(vu.counts().total(), 2u);
}

// --- SHA-1 kernel ----------------------------------------------------------------

TEST(ApuSha1, MatchesScalarOnAllLanes) {
  const auto seeds = random_seeds(10);
  std::array<hash::Digest160, kLanes> digests;
  VectorUnit vu;
  sha1_seed_x64(seeds, digests, vu);
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(digests[static_cast<unsigned>(l)],
              hash::sha1_seed(seeds[static_cast<unsigned>(l)]))
        << "lane " << l;
  }
}

TEST(ApuSha1, DistinctLanesStayIndependent) {
  auto seeds = random_seeds(11);
  std::array<hash::Digest160, kLanes> before, after;
  VectorUnit vu;
  sha1_seed_x64(seeds, before, vu);
  // Perturb one lane only; every other digest must be unchanged.
  seeds[17].flip_bit(100);
  sha1_seed_x64(seeds, after, vu);
  for (int l = 0; l < kLanes; ++l) {
    if (l == 17) {
      EXPECT_NE(after[static_cast<unsigned>(l)], before[static_cast<unsigned>(l)]);
    } else {
      EXPECT_EQ(after[static_cast<unsigned>(l)], before[static_cast<unsigned>(l)]);
    }
  }
}

TEST(ApuSha1, ColumnCyclesPerHashAreStable) {
  const auto seeds = random_seeds(12);
  std::array<hash::Digest160, kLanes> digests;
  VectorUnit vu;
  sha1_seed_x64(seeds, digests, vu);
  const u64 first = vu.counts().total();
  sha1_seed_x64(seeds, digests, vu);
  EXPECT_EQ(vu.counts().total(), 2 * first) << "cost must be data-independent";
}

// --- Keccak kernel ----------------------------------------------------------------

TEST(ApuKeccak, PermutationMatchesScalar) {
  Xoshiro256 rng(13);
  std::array<u64, 25> scalar_state;
  for (auto& lane : scalar_state) lane = rng.next();

  // Load the same state into every APU lane.
  std::array<Word64, 25> sliced;
  for (int i = 0; i < 25; ++i) {
    std::array<u64, kLanes> lanes;
    lanes.fill(scalar_state[static_cast<unsigned>(i)]);
    sliced[static_cast<unsigned>(i)] = transpose64(lanes);
  }
  VectorUnit vu;
  keccak_f1600_x64(sliced, vu);
  hash::keccak_f1600(scalar_state.data());
  for (int i = 0; i < 25; ++i) {
    const auto lanes = untranspose64(sliced[static_cast<unsigned>(i)]);
    for (int l = 0; l < kLanes; ++l) {
      ASSERT_EQ(lanes[static_cast<unsigned>(l)],
                scalar_state[static_cast<unsigned>(i)])
          << "state lane " << i << ", APU lane " << l;
    }
  }
}

TEST(ApuSha3, MatchesScalarOnAllLanes) {
  const auto seeds = random_seeds(14);
  std::array<hash::Digest256, kLanes> digests;
  VectorUnit vu;
  sha3_256_seed_x64(seeds, digests, vu);
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_EQ(digests[static_cast<unsigned>(l)],
              hash::sha3_256_seed(seeds[static_cast<unsigned>(l)]))
        << "lane " << l;
  }
}

// --- cost-model grounding ------------------------------------------------------------

TEST(ApuCosts, Sha3CostsMoreColumnCyclesThanSha1) {
  const auto seeds = random_seeds(15);
  VectorUnit sha1_vu, sha3_vu;
  std::array<hash::Digest160, kLanes> d1;
  std::array<hash::Digest256, kLanes> d3;
  sha1_seed_x64(seeds, d1, sha1_vu);
  sha3_256_seed_x64(seeds, d3, sha3_vu);

  const double sha1_columns = static_cast<double>(sha1_vu.counts().total());
  const double sha3_columns = static_cast<double>(sha3_vu.counts().total());
  EXPECT_GT(sha3_columns, 2.0 * sha1_columns)
      << "the SHA-3 state/permutation must dominate SHA-1's";

  // Grounding against the Table-5-calibrated PE-cycle costs. A PE processes
  // its datapath width of bit-columns per cycle (§3.3: 32 BPs for SHA-1, 80
  // for SHA-3), so the boolean compute alone costs column_ops / width
  // PE-cycles. That compute floor must fit inside the calibrated budget —
  // the remainder is the state movement, operand staging and control a
  // column-op count cannot see.
  const auto& calib = sim::default_calibration();
  const double sha1_compute_cycles = sha1_columns / 32.0;
  const double sha3_compute_cycles = sha3_columns / 80.0;
  EXPECT_LT(sha1_compute_cycles, calib.apu_cycles_sha1);
  EXPECT_LT(sha3_compute_cycles, calib.apu_cycles_sha3);
  // And the floor should be a meaningful fraction of the budget, not
  // vanishing — otherwise the calibration would be unexplainable.
  EXPECT_GT(sha1_compute_cycles, 0.05 * calib.apu_cycles_sha1);
  EXPECT_GT(sha3_compute_cycles, 0.05 * calib.apu_cycles_sha3);
}

TEST(ApuCosts, PlaneOpAmortizationAcrossLanes) {
  // 64 lanes per plane word: the data-parallel premise of the APU design is
  // that one column op serves all lanes. Assert it structurally (wall-clock
  // comparisons are too noisy for CI): the column-op count per HASH is the
  // batch count divided by the lane width, and it is far below what 64
  // independent bit-serial executions would need.
  const auto seeds = random_seeds(16);
  std::array<hash::Digest160, kLanes> digests;
  VectorUnit vu;
  sha1_seed_x64(seeds, digests, vu);
  const double ops_per_batch = static_cast<double>(vu.counts().total());
  // A lane-serial machine would re-run every column op per lane.
  const double lane_serial_ops = ops_per_batch * kLanes;
  EXPECT_GT(lane_serial_ops / ops_per_batch, 63.9);
  // And the per-batch count must be independent of the lane VALUES.
  VectorUnit vu2;
  const auto other = random_seeds(17);
  sha1_seed_x64(other, digests, vu2);
  EXPECT_EQ(vu2.counts().total(), vu.counts().total());
}

}  // namespace
}  // namespace rbc::apu
