// The sharded serving layer: routing, EDF dispatch, feasibility shedding,
// bounded device tables, shutdown accounting, and the cross-shard counter
// invariant submitted == rejected + completed.
//
// ShardStress.* are TSan targets (scripts/ci.sh runs them under the tsan
// preset with shards > 1): they exercise concurrent submitters, a stats
// poller, and shutdown against every shard seam at once.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/shard_hash.hpp"
#include "server/auth_server.hpp"

namespace rbc::server {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

/// One CA+RA pair serving `num_devices` enrolled devices. Identical seeds
/// produce identical stacks — the sharded-vs-single-shard equivalence test
/// builds two of these and compares session outcomes field by field.
struct ShardFixture {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  ShardFixture(int num_devices, int max_distance, u64 id_base = 0) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = id_base + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = max_distance;
    ca_cfg.time_threshold_s = 600.0;  // sessions govern time via the server
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, int injected_distance,
                                      u64 rng_salt) const {
    const std::size_t index = static_cast<std::size_t>(device_index);
    ClientConfig ccfg;
    ccfg.device_id = device_ids[index];
    ccfg.injected_distance = injected_distance;
    return std::make_unique<Client>(ccfg, devices[index].get(),
                                    ccfg.device_id ^ rng_salt);
  }
};

void expect_quiescent_invariant(const ServerStats& s) {
  EXPECT_EQ(s.submitted, s.rejected + s.completed)
      << "counter leak: submitted=" << s.submitted
      << " rejected=" << s.rejected << " completed=" << s.completed;
  EXPECT_EQ(s.queue_depth, 0);
  EXPECT_EQ(s.in_flight, 0);
  EXPECT_LE(s.shed_infeasible, s.rejected);
  EXPECT_LE(s.cancelled, s.completed);
}

TEST(ShardStress, ConcurrentSubmitStatsShutdownAcrossShards) {
  // 4 shards x 2 drivers, 4 submitter threads, one stats poller hammering
  // the aggregate snapshot, and a shutdown racing the tail of the load.
  // Every future must resolve, and the counters must reconcile exactly.
  constexpr int kDevices = 32;
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 16;
  ShardFixture f(kDevices, 2, /*id_base=*/7000);
  ServerConfig cfg;
  cfg.num_shards = 4;
  cfg.max_queue_depth = 64;
  cfg.max_in_flight = 8;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  auto server = std::make_unique<AuthServer>(cfg, f.ca.get(), &f.ra);
  EXPECT_EQ(server->num_shards(), 4);

  std::atomic<bool> stop_polling{false};
  std::thread poller([&] {
    while (!stop_polling.load(std::memory_order_acquire)) {
      const ServerStats s = server->stats();
      // Transient snapshots may have work queued/in flight, but counters
      // must never run ahead of submissions.
      EXPECT_LE(s.rejected + s.completed, s.submitted);
      std::this_thread::yield();
    }
  });

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  std::mutex collect_mutex;
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          const int device = (t * kPerSubmitter + i) % kDevices;
          auto client = f.make_client(device, 1, 0x51A6 + static_cast<u64>(t));
          auto future = server->submit(client.get());
          std::lock_guard lock(collect_mutex);
          clients.push_back(std::move(client));
          futures.push_back(std::move(future));
        }
      });
    }
    for (auto& s : submitters) s.join();
  }
  server->shutdown();  // races the last in-flight drains
  stop_polling.store(true, std::memory_order_release);
  poller.join();

  u64 accepted = 0, rejected = 0, cancelled = 0;
  for (auto& future : futures) {
    const SessionOutcome outcome = future.get();
    (outcome.accepted ? accepted : rejected)++;
    if (outcome.cancelled) ++cancelled;
  }
  EXPECT_EQ(accepted + rejected,
            static_cast<u64>(kSubmitters * kPerSubmitter));

  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.submitted, static_cast<u64>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, accepted);
  EXPECT_EQ(stats.cancelled, cancelled);
  expect_quiescent_invariant(stats);
}

TEST(ShardStress, ShardedMatchesSingleShardVerdicts) {
  // Two identically seeded stacks, one routed through 1 shard and one
  // through 4. For a fixed client set submitted in a fixed order, the
  // protocol-level outcome of every session — verdict, found distance,
  // registered key, and the deterministic Table-5 comm field — must be
  // identical: sharding is a serving-layer change, not a protocol change.
  constexpr int kDevices = 12;
  auto run_with_shards = [&](int num_shards) {
    ShardFixture f(kDevices, 2, /*id_base=*/7100);
    ServerConfig cfg;
    cfg.num_shards = num_shards;
    cfg.max_queue_depth = 16;
    cfg.max_in_flight = num_shards;  // 1 driver per shard
    cfg.session_budget_s = 600.0;
    AuthServer server(cfg, f.ca.get(), &f.ra);
    std::vector<SessionOutcome> outcomes;
    for (int i = 0; i < kDevices; ++i) {
      auto client = f.make_client(i, 1, 0xE0);
      // Sequential submission pins the per-stripe challenge RNG order.
      outcomes.push_back(server.submit(client.get()).get());
    }
    return outcomes;
  };

  const auto single = run_with_shards(1);
  const auto sharded = run_with_shards(4);
  ASSERT_EQ(single.size(), sharded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].device_id, sharded[i].device_id);
    EXPECT_EQ(single[i].accepted, sharded[i].accepted) << "session " << i;
    EXPECT_EQ(single[i].authenticated, sharded[i].authenticated)
        << "session " << i;
    EXPECT_EQ(single[i].timed_out, sharded[i].timed_out) << "session " << i;
    EXPECT_EQ(single[i].report.result.found_distance,
              sharded[i].report.result.found_distance)
        << "session " << i;
    EXPECT_EQ(single[i].report.registered_public_key,
              sharded[i].report.registered_public_key)
        << "session " << i;
    EXPECT_DOUBLE_EQ(single[i].report.comm_time_s,
                     sharded[i].report.comm_time_s)
        << "session " << i;
  }
}

TEST(ShardStress, TightDeadlineOvertakesSlackOne) {
  // EDF dispatch: with the single driver pinned by a long-running session,
  // a SLACK session (budget 600 s) is queued BEFORE a TIGHT one (budget
  // 30 s). FIFO would run the slack one first; earliest-deadline-first must
  // pick the tight one the moment the driver frees, so its queue wait is
  // strictly shorter even though it was submitted later.
  ShardFixture f(3, 2, /*id_base=*/7200);
  ServerConfig cfg;
  cfg.num_shards = 1;
  cfg.max_queue_depth = 8;
  cfg.max_in_flight = 1;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.05;
  cfg.realtime_comm = true;  // the blocker occupies the driver >= 0.5 s
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto blocker = f.make_client(0, 1, 0xB10C);
  auto slack = f.make_client(1, 1, 0x51AC);
  auto tight = f.make_client(2, 1, 0x7167);

  auto blocker_future = server.submit(blocker.get());
  // Let the driver pick the blocker up before queueing the contenders.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto slack_future = server.submit(slack.get());  // deadline now + 600 s
  auto tight_future = server.submit(tight.get(), /*budget_s=*/30.0);

  const SessionOutcome blocker_outcome = blocker_future.get();
  const SessionOutcome slack_outcome = slack_future.get();
  const SessionOutcome tight_outcome = tight_future.get();
  EXPECT_TRUE(blocker_outcome.authenticated);
  EXPECT_TRUE(slack_outcome.authenticated);
  EXPECT_TRUE(tight_outcome.authenticated);
  // The overtake: tight was submitted after slack yet ran first.
  EXPECT_LT(tight_outcome.queue_wait_s, slack_outcome.queue_wait_s)
      << "EDF should dispatch the tight-deadline session first";

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  expect_quiescent_invariant(stats);
}

TEST(ShardStress, DeviceTableBoundedUnderRollingPopulation) {
  // A rolling population of devices (each seen once) must not grow the
  // per-device state tables without bound: idle entries are LRU-evicted at
  // the per-shard cap. The seed server leaked one mutex per device ever
  // seen.
  constexpr int kDevices = 64;
  constexpr int kCapPerShard = 8;
  ShardFixture f(kDevices, 1, /*id_base=*/7300);
  ServerConfig cfg;
  cfg.num_shards = 2;
  cfg.max_queue_depth = 8;
  cfg.max_in_flight = 2;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  cfg.max_device_states = kCapPerShard;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  for (int i = 0; i < kDevices; ++i) {
    auto client = f.make_client(i, 1, 0xD0);
    const SessionOutcome outcome = server.submit(client.get()).get();
    ASSERT_TRUE(outcome.accepted) << "session " << i;
    EXPECT_TRUE(outcome.authenticated) << "session " << i;
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<u64>(kDevices));
  EXPECT_LE(stats.device_states,
            static_cast<u64>(cfg.num_shards * kCapPerShard))
      << "idle per-device state not evicted";
  expect_quiescent_invariant(stats);
}

TEST(ShardStress, ShutdownAccountsQueuedSessionsAsCancelled) {
  // Shutdown with sessions still queued: the seed server resolved their
  // futures accepted=true / timed_out=false and never counted them, so
  // submitted != rejected + completed afterwards. They must now complete
  // as cancelled and reconcile.
  constexpr int kSessions = 8;
  ShardFixture f(kSessions, 1, /*id_base=*/7400);
  ServerConfig cfg;
  cfg.num_shards = 2;
  cfg.max_queue_depth = 16;
  cfg.max_in_flight = 2;  // 1 driver per shard
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.05;
  cfg.realtime_comm = true;  // each session holds its driver >= 0.5 s
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(i, 1, 0xCA11));
    futures.push_back(server.submit(clients.back().get()));
  }
  server.shutdown();  // at most 2 sessions picked up; the rest were queued

  u64 cancelled = 0, finished = 0;
  for (auto& future : futures) {
    const SessionOutcome outcome = future.get();
    ASSERT_TRUE(outcome.accepted);
    if (outcome.cancelled) {
      ++cancelled;
      EXPECT_FALSE(outcome.authenticated);
    } else {
      ++finished;
    }
  }
  EXPECT_GE(cancelled, 1u) << "no session was still queued at shutdown";

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.completed, cancelled + finished);
  EXPECT_EQ(stats.cancelled, cancelled);
  expect_quiescent_invariant(stats);
}

TEST(ShardStress, InfeasibleDeadlineShedAtAdmission) {
  // Feasibility shedding: in realtime mode the communication floor alone
  // (4 x 0.15 s + 0.30 s PUF read = 0.90 s) exceeds a 0.5 s budget, so the
  // session must be rejected AT SUBMIT — before burning any search cycles
  // it is guaranteed to time out on.
  ShardFixture f(1, 2, /*id_base=*/7500);
  ServerConfig cfg;
  cfg.num_shards = 1;
  cfg.session_budget_s = 0.5;
  cfg.per_message_latency_s = 0.15;
  cfg.realtime_comm = true;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, 1, 0x0F);
  WallTimer timer;
  const SessionOutcome outcome = server.submit(client.get()).get();
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reject_reason, RejectReason::kInfeasible);
  EXPECT_LT(timer.elapsed_s(), 0.25) << "shed should not burn the budget";

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_infeasible, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  expect_quiescent_invariant(stats);
}

TEST(ShardStress, MinimumSearchFloorAppliesWithoutRealtime) {
  // The min_search_time_s component of the floor applies in logical-clock
  // mode too: the operator models the smallest useful search budget.
  ShardFixture f(1, 2, /*id_base=*/7600);
  ServerConfig cfg;
  cfg.num_shards = 1;
  cfg.session_budget_s = 0.5;
  cfg.per_message_latency_s = 0.0;
  cfg.min_search_time_s = 1.0;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  auto client = f.make_client(0, 1, 0x10);
  const SessionOutcome outcome = server.submit(client.get()).get();
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reject_reason, RejectReason::kInfeasible);
  EXPECT_EQ(server.stats().shed_infeasible, 1u);
}

TEST(ShardStress, RoutingConfinesSessionsToTheirShard) {
  // The device -> shard map is stable, stripe-derived, and enforced: a
  // shard view used for a device of ANOTHER shard must trip the
  // confinement check instead of silently touching foreign stripes.
  ShardFixture f(16, 1, /*id_base=*/7700);
  constexpr u32 kShards = 4;
  for (u64 id : f.device_ids) {
    EXPECT_EQ(route_shard(id, kShards), stripe_of(id) % kShards);
  }
  // Find two devices on different shards.
  u64 a = f.device_ids[0];
  u64 b = a;
  for (u64 id : f.device_ids) {
    if (route_shard(id, kShards) != route_shard(a, kShards)) {
      b = id;
      break;
    }
  }
  ASSERT_NE(route_shard(a, kShards), route_shard(b, kShards));

  auto view = f.ca->shard_view(route_shard(a, kShards), kShards);
  net::HandshakeRequest misrouted;
  misrouted.device_id = b;
  EXPECT_THROW(view.issue_challenge(misrouted), CheckFailure);

  auto ra_view = f.ra.shard_view(route_shard(a, kShards), kShards);
  EXPECT_THROW(ra_view.lookup(b), CheckFailure);
}

}  // namespace
}  // namespace rbc::server
