// Golden wire-format tests: exact byte layouts of every protocol message.
// These freeze the format — any change that would break deployed clients
// fails here first.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "net/message.hpp"

namespace rbc::net {
namespace {

std::string frame_hex(const Message& m) { return to_hex(serialize(m)); }

TEST(WireGolden, HandshakeRequest) {
  HandshakeRequest m;
  m.device_id = 0x0102030405060708ULL;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.keygen_algo = crypto::KeygenAlgo::kSaberLike;
  // tag 01 | device id LE | hash 03 | keygen 01
  EXPECT_EQ(frame_hex(Message{m}), "0108070605040302010301");
}

TEST(WireGolden, HandshakeSha1Aes) {
  HandshakeRequest m;
  m.device_id = 1;
  m.hash_algo = hash::HashAlgo::kSha1;
  m.keygen_algo = crypto::KeygenAlgo::kAes128;
  EXPECT_EQ(frame_hex(Message{m}), "0101000000000000000100");
}

TEST(WireGolden, Challenge) {
  Challenge m;
  m.puf_address = 0x00000007;
  m.tapki_enabled = true;
  m.stable_mask = Seed256::one();  // bit 0 set -> first byte 01
  m.requested_noise = 5;
  const std::string hex = frame_hex(Message{m});
  // tag 02 | address LE (07000000) | tapki 01 | 32 mask bytes LE | noise 05
  EXPECT_EQ(hex.substr(0, 12), "020700000001");
  EXPECT_EQ(hex.substr(12, 2), "01");          // mask byte 0
  EXPECT_EQ(hex.size(), 2u * (1 + 4 + 1 + 32 + 1));
  EXPECT_EQ(hex.substr(14, 62), std::string(62, '0'));
  EXPECT_EQ(hex.substr(76, 2), "05");
}

TEST(WireGolden, ChallengeDefaultHasNoNoiseRequest) {
  const std::string hex = frame_hex(Message{Challenge{}});
  EXPECT_EQ(hex.substr(hex.size() - 2), "ff");  // kNoNoiseRequest sentinel
}

TEST(WireGolden, DigestSubmission) {
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha1;
  m.digest.assign(20, 0xab);
  const std::string hex = frame_hex(Message{m});
  // tag 03 | hash 01 | length LE (14000000) | 20 digest bytes
  EXPECT_EQ(hex.substr(0, 12), "030114000000");
  std::string digest_hex;
  for (int i = 0; i < 20; ++i) digest_hex += "ab";
  EXPECT_EQ(hex.substr(12), digest_hex);
}

TEST(WireGolden, AuthResult) {
  AuthResult m;
  m.authenticated = true;
  m.found_distance = 3;
  m.search_seconds = 1.0;  // IEEE-754 LE: 000000000000f03f
  m.timed_out = false;
  EXPECT_EQ(frame_hex(Message{m}), "040103000000000000000000f03f00");
}

TEST(WireGolden, FrameSizesAreStable) {
  EXPECT_EQ(serialize(Message{HandshakeRequest{}}).size(), 11u);
  EXPECT_EQ(serialize(Message{Challenge{}}).size(), 39u);
  EXPECT_EQ(serialize(Message{AuthResult{}}).size(), 15u);
  DigestSubmission d;
  d.hash_algo = hash::HashAlgo::kSha3_256;
  d.digest.assign(32, 0);
  EXPECT_EQ(serialize(Message{d}).size(), 38u);
}

}  // namespace
}  // namespace rbc::net
