// Golden wire-format tests: exact byte layouts of every protocol message.
// These freeze the format — any change that would break deployed clients
// fails here first.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "net/message.hpp"

namespace rbc::net {
namespace {

std::string frame_hex(const Message& m) { return to_hex(serialize(m)); }

TEST(WireGolden, HandshakeRequest) {
  HandshakeRequest m;
  m.device_id = 0x0102030405060708ULL;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.keygen_algo = crypto::KeygenAlgo::kSaberLike;
  // tag 01 | device id LE | hash 03 | keygen 01
  EXPECT_EQ(frame_hex(Message{m}), "0108070605040302010301");
}

TEST(WireGolden, HandshakeSha1Aes) {
  HandshakeRequest m;
  m.device_id = 1;
  m.hash_algo = hash::HashAlgo::kSha1;
  m.keygen_algo = crypto::KeygenAlgo::kAes128;
  EXPECT_EQ(frame_hex(Message{m}), "0101000000000000000100");
}

TEST(WireGolden, Challenge) {
  Challenge m;
  m.puf_address = 0x00000007;
  m.tapki_enabled = true;
  m.stable_mask = Seed256::one();  // bit 0 set -> first byte 01
  m.requested_noise = 5;
  const std::string hex = frame_hex(Message{m});
  // tag 02 | address LE (07000000) | tapki 01 | 32 mask bytes LE | noise 05
  EXPECT_EQ(hex.substr(0, 12), "020700000001");
  EXPECT_EQ(hex.substr(12, 2), "01");          // mask byte 0
  EXPECT_EQ(hex.size(), 2u * (1 + 4 + 1 + 32 + 1));
  EXPECT_EQ(hex.substr(14, 62), std::string(62, '0'));
  EXPECT_EQ(hex.substr(76, 2), "05");
}

TEST(WireGolden, ChallengeDefaultHasNoNoiseRequest) {
  const std::string hex = frame_hex(Message{Challenge{}});
  EXPECT_EQ(hex.substr(hex.size() - 2), "ff");  // kNoNoiseRequest sentinel
}

TEST(WireGolden, DigestSubmission) {
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha1;
  m.digest.assign(20, 0xab);
  const std::string hex = frame_hex(Message{m});
  // tag 03 | hash 01 | length LE (14000000) | 20 digest bytes
  EXPECT_EQ(hex.substr(0, 12), "030114000000");
  std::string digest_hex;
  for (int i = 0; i < 20; ++i) digest_hex += "ab";
  EXPECT_EQ(hex.substr(12), digest_hex);
}

TEST(WireGolden, AuthResult) {
  AuthResult m;
  m.authenticated = true;
  m.found_distance = 3;
  m.search_seconds = 1.0;  // IEEE-754 LE: 000000000000f03f
  m.timed_out = false;
  EXPECT_EQ(frame_hex(Message{m}), "040103000000000000000000f03f00");
}

TEST(WireGolden, FrameSizesAreStable) {
  EXPECT_EQ(serialize(Message{HandshakeRequest{}}).size(), 11u);
  EXPECT_EQ(serialize(Message{Challenge{}}).size(), 39u);
  EXPECT_EQ(serialize(Message{AuthResult{}}).size(), 15u);
  DigestSubmission d;
  d.hash_algo = hash::HashAlgo::kSha3_256;
  d.digest.assign(32, 0);
  EXPECT_EQ(serialize(Message{d}).size(), 38u);
}

TEST(WireGolden, Crc32MatchesTheIeeeCheckVector) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const Bytes check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32_ieee(check), 0xCBF43926u);
  EXPECT_EQ(crc32_ieee(ByteSpan{}), 0u);
}

TEST(WireGolden, SeqFrameEnvelope) {
  // The retransmit envelope, frozen: tag 05 | seq LE | payload length LE |
  // CRC-32(payload) LE | payload bytes.
  const Bytes payload{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const Bytes frame = seal_seq_frame(0x01020304u, payload);
  EXPECT_EQ(to_hex(frame),
            "05"          // tag
            "04030201"    // seq 0x01020304 LE
            "09000000"    // payload length 9 LE
            "2639f4cb"    // CRC-32 0xCBF43926 LE
            "313233343536373839");
  EXPECT_EQ(frame.size(), 13u + payload.size());
}

TEST(WireGolden, SeqFrameRoundTrip) {
  const Bytes payload = serialize(Message{Challenge{}});
  const auto opened = open_seq_frame(seal_seq_frame(7, payload));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->seq, 7u);
  EXPECT_EQ(opened->payload, payload);
}

TEST(WireGolden, SeqFrameRejectsDamage) {
  const Bytes payload = serialize(Message{AuthResult{}});
  const Bytes frame = seal_seq_frame(3, payload);

  EXPECT_EQ(open_seq_frame(ByteSpan{}).error(), WireError::kEmptyFrame);
  Bytes wrong_tag = frame;
  wrong_tag[0] = 0x04;
  EXPECT_EQ(open_seq_frame(wrong_tag).error(), WireError::kUnknownTag);
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    const auto r = open_seq_frame(ByteSpan(frame.data(), cut));
    ASSERT_FALSE(r.has_value()) << "cut " << cut;
    EXPECT_EQ(r.error(), WireError::kTruncated) << "cut " << cut;
  }
  Bytes trailing = frame;
  trailing.push_back(0x00);
  EXPECT_EQ(open_seq_frame(trailing).error(), WireError::kTrailingBytes);
  Bytes bad_payload = frame;
  bad_payload.back() ^= 0x01;
  EXPECT_EQ(open_seq_frame(bad_payload).error(), WireError::kBadChecksum);
}

TEST(WireGolden, SeqFrameEveryBitFlipChangesTheVerdict) {
  // The corruption-detection contract the ARQ rests on: flipping ANY single
  // bit of a sealed frame either fails open_seq_frame outright or (for the
  // CRC-less seq field) yields a different sequence number — which the
  // receiver discards as stale. No flip can impersonate the original frame.
  const Bytes payload = serialize(Message{HandshakeRequest{}});
  const Bytes frame = seal_seq_frame(0xAA55, payload);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    Bytes mutated = frame;
    mutated[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const auto opened = open_seq_frame(mutated);
    if (opened.has_value()) {
      EXPECT_NE(opened->seq, 0xAA55u) << "bit " << bit;
    }
  }
}

}  // namespace
}  // namespace rbc::net
