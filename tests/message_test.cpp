#include <gtest/gtest.h>

#include "net/message.hpp"

namespace rbc::net {
namespace {

template <typename T>
T round_trip(const T& msg) {
  const Bytes frame = serialize(Message{msg});
  auto decoded = deserialize(frame);
  EXPECT_TRUE(decoded.has_value());
  return std::get<T>(decoded.value());
}

TEST(Message, HandshakeRoundTrip) {
  HandshakeRequest m;
  m.device_id = 0xdeadbeefcafef00dULL;
  m.hash_algo = hash::HashAlgo::kSha1;
  m.keygen_algo = crypto::KeygenAlgo::kSaberLike;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, ChallengeRoundTrip) {
  Challenge m;
  m.puf_address = 42;
  m.tapki_enabled = true;
  m.stable_mask = Seed256::low_bits(100);
  m.requested_noise = 4;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, DigestSubmissionRoundTripSha3) {
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.digest.assign(32, 0xab);
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, DigestSubmissionRoundTripSha1) {
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha1;
  m.digest.assign(20, 0x17);
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, AuthResultRoundTrip) {
  AuthResult m;
  m.authenticated = true;
  m.found_distance = 4;
  m.search_seconds = 2.625;
  m.timed_out = false;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, AuthResultNegativeDistance) {
  AuthResult m;
  m.authenticated = false;
  m.found_distance = -1;
  m.timed_out = true;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Deserialize, EmptyFrame) {
  auto r = deserialize(Bytes{});
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kEmptyFrame);
}

TEST(Deserialize, UnknownTag) {
  const Bytes frame = {0x7f, 0x00};
  auto r = deserialize(frame);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kUnknownTag);
}

TEST(Deserialize, TruncatedFramesRejected) {
  // Truncate every message type at every byte boundary; none may decode and
  // none may crash.
  const Message msgs[] = {
      Message{HandshakeRequest{}},
      Message{Challenge{}},
      Message{DigestSubmission{hash::HashAlgo::kSha3_256, Bytes(32, 1)}},
      Message{AuthResult{}},
  };
  for (const auto& msg : msgs) {
    const Bytes full = serialize(msg);
    for (std::size_t len = 1; len < full.size(); ++len) {
      auto r = deserialize(ByteSpan{full.data(), len});
      EXPECT_FALSE(r.has_value()) << "prefix of length " << len << " decoded";
    }
  }
}

TEST(Deserialize, TrailingBytesRejected) {
  Bytes frame = serialize(Message{HandshakeRequest{}});
  frame.push_back(0x00);
  auto r = deserialize(frame);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kTrailingBytes);
}

TEST(Deserialize, BadHashEnumRejected) {
  Bytes frame = serialize(Message{HandshakeRequest{}});
  frame[9] = 0x77;  // hash algo byte
  auto r = deserialize(frame);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kBadEnumValue);
}

TEST(Deserialize, DigestLengthMustMatchAlgorithm) {
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.digest.assign(20, 0);  // SHA-1 length with SHA-3 tag
  const Bytes frame = serialize(Message{m});
  auto r = deserialize(frame);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kBadDigestLength);
}

TEST(Deserialize, OversizedLengthFieldCheckedBeforeEnumByte) {
  // A hostile frame can be wrong in several ways at once; the length bound
  // must be enforced FIRST (before any enum interpretation or payload read),
  // so an oversized length with a garbage algorithm byte still reports the
  // size problem — and a huge length never reads past the buffer.
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.digest.assign(32, 0x5a);
  Bytes frame = serialize(Message{m});
  frame[1] = 0x77;                            // garbage hash-algo byte
  frame[2] = 0xFF;                            // length LSB
  frame[3] = frame[4] = frame[5] = 0xFF;      // length = 0xFFFFFFFF
  auto r = deserialize(frame);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kBadDigestLength);
}

TEST(Deserialize, InBoundsLengthWithBadEnumStillRejectsTheEnum) {
  // Once the length passes its bound, the enum byte is still validated.
  DigestSubmission m;
  m.hash_algo = hash::HashAlgo::kSha3_256;
  m.digest.assign(32, 0x5a);
  Bytes frame = serialize(Message{m});
  frame[1] = 0x77;  // garbage hash-algo byte, length stays a legal 32
  auto r = deserialize(frame);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), WireError::kBadEnumValue);
}

TEST(WireErrorStrings, AllDistinct) {
  const WireError all[] = {WireError::kEmptyFrame,   WireError::kUnknownTag,
                           WireError::kTruncated,    WireError::kTrailingBytes,
                           WireError::kBadEnumValue, WireError::kBadDigestLength,
                           WireError::kBadChecksum};
  for (const auto& a : all) {
    EXPECT_FALSE(to_string(a).empty());
    for (const auto& b : all) {
      if (&a != &b) {
        EXPECT_NE(to_string(a), to_string(b));
      }
    }
  }
}

}  // namespace
}  // namespace rbc::net
