// Tests for the §5 future-work extensions: the multi-node CPU cluster model,
// multi-APU scaling, the injected-noise security planner, and the functional
// multi-GPU backend.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hash/keccak.hpp"
#include "rbc/engines.hpp"
#include "sim/cluster_model.hpp"
#include "sim/security_planner.hpp"

namespace rbc::sim {
namespace {

using hash::HashAlgo;

// --- cluster model -----------------------------------------------------------

TEST(ClusterModel, ReproducesPhilabaumAnchor) {
  ClusterModel cluster;
  // [36]: 404x speedup on 512 CPU cores with the AES-based search.
  EXPECT_NEAR(cluster.philabaum_speedup(), 404.0, 5.0);
}

TEST(ClusterModel, SingleNodeMatchesCpuModel) {
  ClusterModel cluster;
  CpuModel cpu;
  for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
    EXPECT_NEAR(cluster.exhaustive_time_s(5, h, 1),
                cpu.exhaustive_time_s(5, h, 64), 1e-9);
  }
}

TEST(ClusterModel, ScalingIsMonotoneWithDiminishingReturns) {
  ClusterModel cluster;
  double prev_time = 1e30;
  double prev_eff = 2.0;
  for (int nodes : {1, 2, 4, 8, 16}) {
    const double t = cluster.exhaustive_time_s(5, HashAlgo::kSha3_256, nodes);
    EXPECT_LT(t, prev_time);
    const double eff =
        cluster.speedup_vs_one_core(HashAlgo::kSha3_256, nodes) /
        cluster.cores(nodes);
    EXPECT_LT(eff, prev_eff);
    prev_time = t;
    prev_eff = eff;
  }
}

TEST(ClusterModel, EightNodesBringSha3UnderThreshold) {
  // The §5 motivation: SALTED-CPU misses T = 20 s at d = 5 with SHA-3 on one
  // node; a small cluster fixes that.
  ClusterModel cluster;
  EXPECT_GT(cluster.exhaustive_time_s(5, HashAlgo::kSha3_256, 1) + 0.9, 20.0);
  EXPECT_LT(cluster.exhaustive_time_s(5, HashAlgo::kSha3_256, 8) + 0.9, 20.0);
}

// --- multi-APU model ----------------------------------------------------------

TEST(MultiApu, SingleDeviceMatchesApuModel) {
  MultiApuModel multi;
  ApuModel apu;
  const u64 seeds = 8987138113ULL;
  EXPECT_NEAR(multi.time_for_seeds_s(seeds, 1, HashAlgo::kSha3_256, false),
              apu.time_for_seeds_s(seeds, HashAlgo::kSha3_256), 1e-9);
}

TEST(MultiApu, EightApusScaleWell) {
  // §5: "8xAPU can be installed within the 2U form factor ... may enable the
  // APU to have better single node scalability than the GPU."
  MultiApuModel multi;
  const double s8 = multi.speedup(5, 8, HashAlgo::kSha3_256, false);
  EXPECT_GT(s8, 7.0);
  EXPECT_LE(s8, 8.0);
}

TEST(MultiApu, ExhaustiveScalesBetterThanEarlyExit) {
  MultiApuModel multi;
  for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
    EXPECT_GT(multi.speedup(5, 4, h, false), multi.speedup(5, 4, h, true));
  }
}

TEST(MultiApu, ApuScalesBetterThanGpuOnSha3) {
  // The APU's per-device SHA-3 time is ~3x the GPU's, so fixed coordination
  // overheads are relatively smaller — the §5 conjecture.
  MultiApuModel apus;
  MultiGpuModel gpus;
  const double apu_speedup = apus.speedup(5, 3, HashAlgo::kSha3_256, false);
  const auto gpu_curve = gpus.scaling_curve(5, HashAlgo::kSha3_256, false, 3);
  EXPECT_GT(apu_speedup, gpu_curve[2].speedup);
}

// --- security planner ----------------------------------------------------------

TEST(SecurityPlanner, GpuSha3PlansDistanceFive) {
  GpuModel gpu;
  const auto plan = plan_injected_noise(
      [&](int d) { return gpu.exhaustive_time_s(d, HashAlgo::kSha3_256); },
      20.0, 0.90);
  EXPECT_EQ(plan.max_distance, 5);
  EXPECT_NEAR(plan.exhaustive_time_s, 4.67, 0.10);
  EXPECT_EQ(plan.search_space, comb::exhaustive_search_count(5));
  EXPECT_GT(plan.headroom_bits, 24.0);  // 9.0e9 / 257 ~ 2^25
}

TEST(SecurityPlanner, CpuSha3PlansDistanceFour) {
  CpuModel cpu;
  const auto plan = plan_injected_noise(
      [&](int d) { return cpu.exhaustive_time_s(d, HashAlgo::kSha3_256, 64); },
      20.0, 0.90);
  EXPECT_EQ(plan.max_distance, 4);  // d=5 takes 60.7 s > 19.1 s budget
}

TEST(SecurityPlanner, TightBudgetPlansZero) {
  GpuModel gpu;
  const auto plan = plan_injected_noise(
      [&](int d) { return gpu.exhaustive_time_s(d, HashAlgo::kSha3_256); },
      0.901, 0.90);  // ~1 ms budget: even d=1's kernel overheads exceed it?
  // d=1's modeled time is sub-millisecond-ish; accept 0 or 1 but the plan
  // must respect the budget.
  if (plan.max_distance >= 1) {
    EXPECT_LE(plan.exhaustive_time_s, 0.001 + 1e-12);
  }
}

TEST(SecurityPlanner, BudgetValidation) {
  EXPECT_THROW(plan_injected_noise([](int) { return 1.0; }, 1.0, 2.0),
               CheckFailure);
}

TEST(SecurityPlanner, MoreGpusRaiseTheAchievableDistance) {
  MultiGpuModel multi;
  auto plan_for = [&](int gpus) {
    return plan_injected_noise(
        [&](int d) {
          const u64 seeds =
              static_cast<u64>(comb::exhaustive_search_count(d));
          return multi.time_for_seeds_s(seeds, gpus, HashAlgo::kSha3_256,
                                        false);
        },
        20.0, 0.90, /*max_considered=*/8);
  };
  const auto p1 = plan_for(1);
  const auto p3 = plan_for(3);
  EXPECT_GE(p3.max_distance, p1.max_distance);
  EXPECT_LE(p3.exhaustive_time_s, 19.1);
}

}  // namespace
}  // namespace rbc::sim

namespace rbc {
namespace {

// --- functional multi-GPU backend ----------------------------------------------

Bytes sha3_digest_of(const Seed256& s) {
  const auto d = hash::sha3_256_seed(s);
  return Bytes(d.bytes.begin(), d.bytes.end());
}

TEST(MultiGpuBackend, FactorySelectsMultiEngine) {
  EngineConfig cfg;
  cfg.host_threads = 2;
  cfg.num_devices = 3;
  auto backend = make_backend("gpu", cfg);
  EXPECT_EQ(backend->name(), "SALTED-GPU (multi)");
}

TEST(MultiGpuBackend, FindsSeedFunctionally) {
  EngineConfig cfg;
  cfg.host_threads = 2;
  cfg.num_devices = 3;
  auto backend = make_backend("gpu", cfg);

  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(77);
  truth.flip_bit(212);

  SearchOptions opts;
  opts.max_distance = 2;
  const auto report = backend->search(base, sha3_digest_of(truth),
                                      hash::HashAlgo::kSha3_256, opts);
  EXPECT_TRUE(report.result.found);
  EXPECT_EQ(report.result.seed, truth);
  EXPECT_EQ(report.device_name, "3x NVIDIA A100");
}

TEST(MultiGpuBackend, ModeledExhaustiveTimeScalesDown) {
  EngineConfig one;
  one.host_threads = 1;
  EngineConfig three = one;
  three.num_devices = 3;
  auto b1 = make_backend("gpu", one);
  auto b3 = make_backend("gpu", three);
  const double t1 =
      b1->modeled_exhaustive_time_s(5, hash::HashAlgo::kSha3_256);
  const double t3 =
      b3->modeled_exhaustive_time_s(5, hash::HashAlgo::kSha3_256);
  EXPECT_NEAR(t1 / t3, 2.87, 0.1);  // Fig. 4 anchor
}

TEST(Backends, ModeledExhaustiveTimesMatchTable5) {
  EngineConfig cfg;
  cfg.host_threads = 1;
  EXPECT_NEAR(make_backend("gpu", cfg)->modeled_exhaustive_time_s(
                  5, hash::HashAlgo::kSha3_256),
              4.67, 0.10);
  EXPECT_NEAR(make_backend("apu", cfg)->modeled_exhaustive_time_s(
                  5, hash::HashAlgo::kSha3_256),
              13.95, 0.30);
  EXPECT_NEAR(make_backend("cpu", cfg)->modeled_exhaustive_time_s(
                  5, hash::HashAlgo::kSha3_256),
              60.68, 1.30);
}

}  // namespace
}  // namespace rbc
