#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "common/shard_hash.hpp"
#include "rbc/enrollment_db.hpp"

namespace rbc {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  for (std::size_t i = 0; i < k.size(); ++i) k[i] = static_cast<u8>(i * 7 + 1);
  return k;
}

puf::SramPufModel make_device(u64 serial) {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.05;
  p.stable_flip_probability = 0.005;
  p.erratic_flip_probability = 0.3;
  return puf::SramPufModel(p, serial);
}

TEST(EnrollmentDatabase, EnrollAndLoadRoundTrip) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(100);
  Xoshiro256 rng(1);
  db.enroll(100, device, 50, 0.05, rng);

  ASSERT_TRUE(db.contains(100));
  const EnrollmentRecord record = db.load(100);
  EXPECT_EQ(record.image.num_addresses(), 4u);
  EXPECT_EQ(record.masks.size(), 4u);
  for (u32 a = 0; a < 4; ++a)
    EXPECT_EQ(record.image.word(a), device.enrolled_word(a));
}

TEST(EnrollmentDatabase, AtRestBytesAreEncrypted) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(200);
  Xoshiro256 rng(2);
  db.enroll(200, device, 50, 0.05, rng);

  const Bytes& blob = db.ciphertext(200);
  // The plaintext image words must not appear in the at-rest bytes.
  const auto word0 = device.enrolled_word(0).to_bytes();
  const auto it = std::search(blob.begin(), blob.end(), word0.begin(),
                              word0.end());
  EXPECT_EQ(it, blob.end()) << "enrolled word leaked in at-rest ciphertext";
}

TEST(EnrollmentDatabase, DifferentMasterKeysGiveDifferentCiphertext) {
  auto k2 = master_key();
  k2[0] ^= 0xff;
  EnrollmentDatabase a(master_key());
  EnrollmentDatabase b(k2);
  const auto device = make_device(300);
  Xoshiro256 rng1(3), rng2(3);
  a.enroll(300, device, 50, 0.05, rng1);
  b.enroll(300, device, 50, 0.05, rng2);
  EXPECT_NE(a.ciphertext(300), b.ciphertext(300));
}

TEST(EnrollmentDatabase, PerDeviceNonceDiversifiesCiphertext) {
  // Same key, same device contents, different device id -> different bytes.
  EnrollmentDatabase db(master_key());
  const auto device = make_device(400);
  Xoshiro256 rng1(4), rng2(4);
  db.enroll(400, device, 50, 0.05, rng1);
  db.enroll(401, device, 50, 0.05, rng2);
  EXPECT_NE(db.ciphertext(400), db.ciphertext(401));
}

TEST(EnrollmentDatabase, DoubleEnrollRejected) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(500);
  Xoshiro256 rng(5);
  db.enroll(500, device, 20, 0.05, rng);
  EXPECT_THROW(db.enroll(500, device, 20, 0.05, rng), CheckFailure);
}

TEST(EnrollmentDatabase, UnknownDeviceRejected) {
  EnrollmentDatabase db(master_key());
  EXPECT_FALSE(db.contains(9));
  EXPECT_THROW(db.load(9), CheckFailure);
  EXPECT_THROW(db.ciphertext(9), CheckFailure);
}

TEST(EnrollmentDatabase, MasksSurviveEncryptionRoundTrip) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(600);
  Xoshiro256 rng(6);
  // Calibrate reference masks with an identical RNG stream.
  Xoshiro256 rng_copy(6);
  std::vector<puf::TapkiMask> expected;
  for (u32 a = 0; a < device.num_addresses(); ++a)
    expected.push_back(
        puf::TapkiMask::calibrate(device, a, 50, 0.05, rng_copy));
  db.enroll(600, device, 50, 0.05, rng);

  const EnrollmentRecord record = db.load(600);
  for (u32 a = 0; a < device.num_addresses(); ++a) {
    EXPECT_EQ(record.masks[a].stable_bits(), expected[a].stable_bits())
        << "address " << a;
  }
}

TEST(EnrollmentDatabase, SizeTracksEnrollments) {
  EnrollmentDatabase db(master_key());
  EXPECT_EQ(db.size(), 0u);
  Xoshiro256 rng(7);
  db.enroll(1, make_device(1), 20, 0.05, rng);
  db.enroll(2, make_device(2), 20, 0.05, rng);
  EXPECT_EQ(db.size(), 2u);
}

TEST(EnrollmentDatabase, StripeSizesSumToTotal) {
  // The striped store must place every record in exactly the stripe the
  // routing hash names — the property shard confinement relies on.
  EnrollmentDatabase db(master_key());
  Xoshiro256 rng(8);
  constexpr u64 kDevices = 48;
  for (u64 id = 1000; id < 1000 + kDevices; ++id)
    db.enroll(id, make_device(id), 20, 0.05, rng);

  std::size_t sum = 0;
  for (u32 s = 0; s < kAuthorityStripes; ++s) sum += db.stripe_size(s);
  EXPECT_EQ(sum, kDevices);
  EXPECT_EQ(db.size(), kDevices);
  for (u64 id = 1000; id < 1000 + kDevices; ++id) {
    // contains() via the right stripe only.
    EXPECT_TRUE(db.contains(id));
    EXPECT_GE(db.stripe_size(stripe_of(id)), 1u);
  }
}

TEST(EnrollmentDatabaseConcurrency, EnrollWhileLoading) {
  // Serving shards read (load/ciphertext) while enrollment keeps adding new
  // devices on other threads. Striped locks + snapshot reads must keep every
  // read coherent; TSan runs this suite to prove the locking is real.
  EnrollmentDatabase db(master_key());
  constexpr u64 kExisting = 16;
  constexpr u64 kNewPerThread = 8;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  {
    Xoshiro256 rng(9);
    for (u64 id = 0; id < kExisting; ++id)
      db.enroll(2000 + id, make_device(2000 + id), 20, 0.05, rng);
  }

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      Xoshiro256 rng(100 + static_cast<u64>(w));
      for (u64 i = 0; i < kNewPerThread; ++i) {
        const u64 id = 3000 + static_cast<u64>(w) * kNewPerThread + i;
        db.enroll(id, make_device(id), 20, 0.05, rng);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db] {
      for (int pass = 0; pass < 20; ++pass) {
        for (u64 id = 0; id < kExisting; ++id) {
          const EnrollmentRecord record = db.load(2000 + id);
          EXPECT_EQ(record.image.num_addresses(), 4u);
          EXPECT_FALSE(db.ciphertext(2000 + id).empty());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.size(), kExisting + kWriters * kNewPerThread);
}

TEST(EnrollmentDatabase, SaveIsByteStableAcrossEnrollmentOrder) {
  // save() writes records in ascending device-id order regardless of stripe
  // or insertion order, so the on-disk format is reproducible.
  const std::vector<u64> ids = {5, 900, 42, 7777, 13};
  auto build = [&](bool reversed) {
    EnrollmentDatabase db(master_key());
    auto order = ids;
    if (reversed) std::reverse(order.begin(), order.end());
    for (u64 id : order) {
      Xoshiro256 rng(id);  // per-device stream: order-independent masks
      db.enroll(id, make_device(id), 20, 0.05, rng);
    }
    return db;
  };
  const std::string path_a = "enroll_order_a.bin";
  const std::string path_b = "enroll_order_b.bin";
  build(false).save(path_a);
  build(true).save(path_b);

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(path_a), slurp(path_b));

  // And the file still round-trips through the striped store.
  const EnrollmentDatabase loaded =
      EnrollmentDatabase::load_from_file(path_a, master_key());
  EXPECT_EQ(loaded.size(), ids.size());
  for (u64 id : ids) EXPECT_TRUE(loaded.contains(id));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace rbc
