#include <gtest/gtest.h>

#include "rbc/enrollment_db.hpp"

namespace rbc {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  for (std::size_t i = 0; i < k.size(); ++i) k[i] = static_cast<u8>(i * 7 + 1);
  return k;
}

puf::SramPufModel make_device(u64 serial) {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.05;
  p.stable_flip_probability = 0.005;
  p.erratic_flip_probability = 0.3;
  return puf::SramPufModel(p, serial);
}

TEST(EnrollmentDatabase, EnrollAndLoadRoundTrip) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(100);
  Xoshiro256 rng(1);
  db.enroll(100, device, 50, 0.05, rng);

  ASSERT_TRUE(db.contains(100));
  const EnrollmentRecord record = db.load(100);
  EXPECT_EQ(record.image.num_addresses(), 4u);
  EXPECT_EQ(record.masks.size(), 4u);
  for (u32 a = 0; a < 4; ++a)
    EXPECT_EQ(record.image.word(a), device.enrolled_word(a));
}

TEST(EnrollmentDatabase, AtRestBytesAreEncrypted) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(200);
  Xoshiro256 rng(2);
  db.enroll(200, device, 50, 0.05, rng);

  const Bytes& blob = db.ciphertext(200);
  // The plaintext image words must not appear in the at-rest bytes.
  const auto word0 = device.enrolled_word(0).to_bytes();
  const auto it = std::search(blob.begin(), blob.end(), word0.begin(),
                              word0.end());
  EXPECT_EQ(it, blob.end()) << "enrolled word leaked in at-rest ciphertext";
}

TEST(EnrollmentDatabase, DifferentMasterKeysGiveDifferentCiphertext) {
  auto k2 = master_key();
  k2[0] ^= 0xff;
  EnrollmentDatabase a(master_key());
  EnrollmentDatabase b(k2);
  const auto device = make_device(300);
  Xoshiro256 rng1(3), rng2(3);
  a.enroll(300, device, 50, 0.05, rng1);
  b.enroll(300, device, 50, 0.05, rng2);
  EXPECT_NE(a.ciphertext(300), b.ciphertext(300));
}

TEST(EnrollmentDatabase, PerDeviceNonceDiversifiesCiphertext) {
  // Same key, same device contents, different device id -> different bytes.
  EnrollmentDatabase db(master_key());
  const auto device = make_device(400);
  Xoshiro256 rng1(4), rng2(4);
  db.enroll(400, device, 50, 0.05, rng1);
  db.enroll(401, device, 50, 0.05, rng2);
  EXPECT_NE(db.ciphertext(400), db.ciphertext(401));
}

TEST(EnrollmentDatabase, DoubleEnrollRejected) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(500);
  Xoshiro256 rng(5);
  db.enroll(500, device, 20, 0.05, rng);
  EXPECT_THROW(db.enroll(500, device, 20, 0.05, rng), CheckFailure);
}

TEST(EnrollmentDatabase, UnknownDeviceRejected) {
  EnrollmentDatabase db(master_key());
  EXPECT_FALSE(db.contains(9));
  EXPECT_THROW(db.load(9), CheckFailure);
  EXPECT_THROW(db.ciphertext(9), CheckFailure);
}

TEST(EnrollmentDatabase, MasksSurviveEncryptionRoundTrip) {
  EnrollmentDatabase db(master_key());
  const auto device = make_device(600);
  Xoshiro256 rng(6);
  // Calibrate reference masks with an identical RNG stream.
  Xoshiro256 rng_copy(6);
  std::vector<puf::TapkiMask> expected;
  for (u32 a = 0; a < device.num_addresses(); ++a)
    expected.push_back(
        puf::TapkiMask::calibrate(device, a, 50, 0.05, rng_copy));
  db.enroll(600, device, 50, 0.05, rng);

  const EnrollmentRecord record = db.load(600);
  for (u32 a = 0; a < device.num_addresses(); ++a) {
    EXPECT_EQ(record.masks[a].stable_bits(), expected[a].stable_bits())
        << "address " << a;
  }
}

TEST(EnrollmentDatabase, SizeTracksEnrollments) {
  EnrollmentDatabase db(master_key());
  EXPECT_EQ(db.size(), 0u);
  Xoshiro256 rng(7);
  db.enroll(1, make_device(1), 20, 0.05, rng);
  db.enroll(2, make_device(2), 20, 0.05, rng);
  EXPECT_EQ(db.size(), 2u);
}

}  // namespace
}  // namespace rbc
