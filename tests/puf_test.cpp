#include <gtest/gtest.h>

#include "puf/puf.hpp"

namespace rbc::puf {
namespace {

SramPufModel::Params quiet_params() {
  SramPufModel::Params p;
  p.num_addresses = 8;
  p.erratic_cell_fraction = 0.0;
  p.stable_flip_probability = 0.01;
  return p;
}

TEST(SramPufModel, DeterministicManufacturing) {
  const SramPufModel a(quiet_params(), 1234);
  const SramPufModel b(quiet_params(), 1234);
  for (u32 addr = 0; addr < 8; ++addr)
    EXPECT_EQ(a.enrolled_word(addr), b.enrolled_word(addr));
}

TEST(SramPufModel, DistinctDevicesAreUnique) {
  const SramPufModel a(quiet_params(), 1);
  const SramPufModel b(quiet_params(), 2);
  // Digital-fingerprint property: different serials give unrelated images.
  EXPECT_GT(hamming_distance(a.enrolled_word(0), b.enrolled_word(0)), 80);
}

TEST(SramPufModel, AddressesHoldDistinctWords) {
  const SramPufModel puf(quiet_params(), 7);
  EXPECT_NE(puf.enrolled_word(0), puf.enrolled_word(1));
}

TEST(SramPufModel, AddressOutOfRangeRejected) {
  const SramPufModel puf(quiet_params(), 7);
  EXPECT_THROW(puf.enrolled_word(8), rbc::CheckFailure);
  Xoshiro256 rng(1);
  EXPECT_THROW(puf.read(100, rng), rbc::CheckFailure);
}

TEST(SramPufModel, NoiselessDeviceReadsEnrolledValue) {
  auto p = quiet_params();
  p.stable_flip_probability = 0.0;
  const SramPufModel puf(p, 3);
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(puf.read(0, rng), puf.enrolled_word(0));
}

TEST(SramPufModel, ReadNoiseMatchesConfiguredRate) {
  auto p = quiet_params();
  p.stable_flip_probability = 0.02;  // expect ~5.1 flips per 256-bit read
  const SramPufModel puf(p, 11);
  Xoshiro256 rng(13);
  const double ber = estimate_bit_error_rate(puf, 0, 2000, rng);
  // Cell jitter is uniform in [0.5, 1.5) of the base rate, so the mean per-
  // read flip count is ~256 * 0.02 = 5.12.
  EXPECT_NEAR(ber, 5.12, 1.0);
}

TEST(SramPufModel, ErraticCellsRaiseErrorRate) {
  auto p = quiet_params();
  p.erratic_cell_fraction = 0.10;
  p.erratic_flip_probability = 0.3;
  const SramPufModel noisy(p, 21);
  const SramPufModel quiet(quiet_params(), 21);
  Xoshiro256 rng(17);
  EXPECT_GT(estimate_bit_error_rate(noisy, 0, 300, rng),
            estimate_bit_error_rate(quiet, 0, 300, rng) + 2.0);
}

TEST(SramPufModel, CellProbabilitiesWithinClassBounds) {
  auto p = quiet_params();
  p.erratic_cell_fraction = 0.5;
  p.erratic_flip_probability = 0.25;
  const SramPufModel puf(p, 31);
  for (int bit = 0; bit < 256; ++bit) {
    const double prob = puf.cell_flip_probability(0, bit);
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 0.5);
  }
}

TEST(EnrollmentImage, CapturesAllAddresses) {
  const SramPufModel puf(quiet_params(), 41);
  const auto image = EnrollmentImage::capture(puf);
  EXPECT_EQ(image.num_addresses(), puf.num_addresses());
  for (u32 a = 0; a < puf.num_addresses(); ++a)
    EXPECT_EQ(image.word(a), puf.enrolled_word(a));
  EXPECT_THROW(image.word(99), rbc::CheckFailure);
}

TEST(TapkiMask, AllStableByDefault) {
  const TapkiMask mask = TapkiMask::all_stable();
  EXPECT_EQ(mask.num_unstable(), 0);
  Xoshiro256 rng(1);
  const Seed256 reading = Seed256::random(rng);
  const Seed256 enrolled = Seed256::random(rng);
  EXPECT_EQ(mask.apply(reading, enrolled), reading);
}

TEST(TapkiMask, CalibrationFlagsErraticCells) {
  auto p = quiet_params();
  p.erratic_cell_fraction = 0.08;
  p.erratic_flip_probability = 0.30;
  p.stable_flip_probability = 0.002;
  const SramPufModel puf(p, 51);
  Xoshiro256 rng(19);
  const TapkiMask mask = TapkiMask::calibrate(puf, 0, 200, 0.05, rng);

  // Roughly 8% of 256 cells should be masked (binomial spread allowed).
  EXPECT_GT(mask.num_unstable(), 5);
  EXPECT_LT(mask.num_unstable(), 50);

  // Every masked cell must actually be erratic.
  for (int bit = 0; bit < 256; ++bit) {
    if (!mask.stable_bits().bit(bit)) {
      EXPECT_GT(puf.cell_flip_probability(0, bit), 0.05) << "bit " << bit;
    }
  }
}

TEST(TapkiMask, ApplyPinsUnstableBitsToEnrolled) {
  auto p = quiet_params();
  p.erratic_cell_fraction = 0.2;
  p.erratic_flip_probability = 0.4;
  const SramPufModel puf(p, 61);
  Xoshiro256 rng(23);
  const TapkiMask mask = TapkiMask::calibrate(puf, 0, 200, 0.05, rng);
  ASSERT_GT(mask.num_unstable(), 0);

  const Seed256& enrolled = puf.enrolled_word(0);
  const Seed256 reading = puf.read(0, rng);
  const Seed256 masked = mask.apply(reading, enrolled);
  for (int bit = 0; bit < 256; ++bit) {
    if (mask.stable_bits().bit(bit)) {
      EXPECT_EQ(masked.bit(bit), reading.bit(bit));
    } else {
      EXPECT_EQ(masked.bit(bit), enrolled.bit(bit));
    }
  }
}

TEST(TapkiMask, MaskingReducesEffectiveErrorRate) {
  auto p = quiet_params();
  p.erratic_cell_fraction = 0.10;
  p.erratic_flip_probability = 0.35;
  const SramPufModel puf(p, 71);
  Xoshiro256 rng(29);
  const TapkiMask mask = TapkiMask::calibrate(puf, 0, 300, 0.05, rng);
  const Seed256& enrolled = puf.enrolled_word(0);

  double raw = 0, masked = 0;
  const int reads = 300;
  for (int i = 0; i < reads; ++i) {
    const Seed256 r = puf.read(0, rng);
    raw += hamming_distance(r, enrolled);
    masked += hamming_distance(mask.apply(r, enrolled), enrolled);
  }
  EXPECT_LT(masked / reads, raw / reads / 2.0)
      << "TAPKI should cut the error rate by well over half";
}

TEST(MajorityRead, ConvergesToEnrolledOnStableCells) {
  auto p = quiet_params();
  p.stable_flip_probability = 0.01;
  const SramPufModel puf(p, 83);
  Xoshiro256 rng(47);
  // With 9 reads and 1% flip rates, the majority equals the enrolled word
  // with overwhelming probability on every cell.
  const Seed256 majority = majority_read(puf, 0, 9, rng);
  EXPECT_EQ(majority, puf.enrolled_word(0));
}

TEST(MajorityRead, BeatsASingleReadOnNoisyDevices) {
  auto p = quiet_params();
  p.stable_flip_probability = 0.05;
  const SramPufModel puf(p, 89);
  Xoshiro256 rng(53);
  double single = 0, voted = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    single += hamming_distance(puf.read(0, rng), puf.enrolled_word(0));
    voted +=
        hamming_distance(majority_read(puf, 0, 7, rng), puf.enrolled_word(0));
  }
  EXPECT_LT(voted / trials, single / trials / 2.0);
}

TEST(MajorityRead, RequiresOddReadCount) {
  const SramPufModel puf(quiet_params(), 97);
  Xoshiro256 rng(59);
  EXPECT_THROW(majority_read(puf, 0, 4, rng), rbc::CheckFailure);
  EXPECT_NO_THROW(majority_read(puf, 0, 1, rng));
}

TEST(AdjustToDistance, InjectsNoiseUpToTarget) {
  Xoshiro256 rng(31);
  const Seed256 ref = Seed256::random(rng);
  // Clean reading, target d=5 — the paper's §4.1 noise-injection policy.
  const Seed256 adjusted =
      adjust_to_distance(ref, ref, 5, Seed256::ones(), rng);
  EXPECT_EQ(hamming_distance(adjusted, ref), 5);
}

TEST(AdjustToDistance, TrimsExcessNoise) {
  Xoshiro256 rng(37);
  const Seed256 ref = Seed256::random(rng);
  Seed256 noisy = ref;
  for (int bit = 0; bit < 40; bit += 2) noisy.flip_bit(bit);
  const Seed256 adjusted =
      adjust_to_distance(noisy, ref, 5, Seed256::ones(), rng);
  EXPECT_EQ(hamming_distance(adjusted, ref), 5);
  // Trimming must only revert already-flipped bits: every remaining
  // disagreement was present in the noisy reading.
  const Seed256 diff = adjusted ^ ref;
  EXPECT_EQ((diff & (noisy ^ ref)), diff);
}

TEST(AdjustToDistance, RespectsAllowedBitsForInjection) {
  Xoshiro256 rng(41);
  const Seed256 ref = Seed256::random(rng);
  // Only bits 0..63 may receive injected noise.
  Seed256 allowed;
  for (int i = 0; i < 64; ++i) allowed.set_bit(i);
  const Seed256 adjusted = adjust_to_distance(ref, ref, 4, allowed, rng);
  const Seed256 diff = adjusted ^ ref;
  EXPECT_EQ(diff.popcount(), 4);
  EXPECT_EQ((diff & ~allowed), Seed256::zero());
}

TEST(AdjustToDistance, ZeroTargetRestoresReference) {
  Xoshiro256 rng(43);
  const Seed256 ref = Seed256::random(rng);
  Seed256 noisy = ref;
  noisy.flip_bit(17);
  noisy.flip_bit(200);
  EXPECT_EQ(adjust_to_distance(noisy, ref, 0, Seed256::ones(), rng), ref);
}

}  // namespace
}  // namespace rbc::puf
