#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/aes128.hpp"

namespace rbc::crypto {
namespace {

Aes128::Key key_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  Aes128::Key k{};
  std::copy(raw.begin(), raw.end(), k.begin());
  return k;
}

Aes128::Block block_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  Aes128::Block b;
  std::copy(raw.begin(), raw.end(), b.begin());
  return b;
}

std::string block_to_hex(const Aes128::Block& b) {
  return to_hex(ByteSpan{b.data(), b.size()});
}

// FIPS-197 Appendix C.1 known-answer test.
TEST(Aes128, Fips197AppendixC1) {
  const Aes128 cipher(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto ct = cipher.encrypt(block_from_hex("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(block_to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// FIPS-197 Appendix B worked example.
TEST(Aes128, Fips197AppendixB) {
  const Aes128 cipher(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto ct = cipher.encrypt(block_from_hex("3243f6a8885a308d313198a2e0370734"));
  EXPECT_EQ(block_to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
}

// NIST SP 800-38A ECB-AES128 vectors (first two blocks).
TEST(Aes128, Sp80038aEcbVectors) {
  const Aes128 cipher(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(block_to_hex(cipher.encrypt(
                block_from_hex("6bc1bee22e409f96e93d7e117393172a"))),
            "3ad77bb40d7a3660a89ecaf32466ef97");
  EXPECT_EQ(block_to_hex(cipher.encrypt(
                block_from_hex("ae2d8a571e03ac9c9eb76fac45af8e51"))),
            "f5d3d58503b9699de785895a96fdbaaf");
}

TEST(Aes128, SboxSpotChecks) {
  // FIPS-197 Figure 7 entries.
  EXPECT_EQ(Aes128::sbox(0x00), 0x63);
  EXPECT_EQ(Aes128::sbox(0x01), 0x7c);
  EXPECT_EQ(Aes128::sbox(0x53), 0xed);
  EXPECT_EQ(Aes128::sbox(0xff), 0x16);
}

TEST(Aes128, SboxIsAPermutation) {
  bool seen[256] = {};
  for (int x = 0; x < 256; ++x) {
    const u8 y = Aes128::sbox(static_cast<u8>(x));
    EXPECT_FALSE(seen[y]) << "duplicate S-box output " << static_cast<int>(y);
    seen[y] = true;
  }
}

TEST(Aes128, EncryptIsDeterministic) {
  const Aes128 cipher(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt = block_from_hex("00112233445566778899aabbccddeeff");
  EXPECT_EQ(cipher.encrypt(pt), cipher.encrypt(pt));
}

TEST(Aes128, KeySensitivity) {
  const auto pt = block_from_hex("00000000000000000000000000000000");
  const Aes128 a(key_from_hex("00000000000000000000000000000000"));
  const Aes128 b(key_from_hex("00000000000000000000000000000001"));
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

TEST(Aes128, PlaintextSensitivity) {
  const Aes128 cipher(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  auto pt = block_from_hex("00000000000000000000000000000000");
  const auto base = cipher.encrypt(pt);
  pt[15] ^= 0x01;
  const auto flipped = cipher.encrypt(pt);
  // Avalanche: many output bits change.
  int changed = 0;
  for (std::size_t i = 0; i < 16; ++i)
    changed += std::popcount(static_cast<unsigned>(base[i] ^ flipped[i]));
  EXPECT_GT(changed, 40);
}

}  // namespace
}  // namespace rbc::crypto
