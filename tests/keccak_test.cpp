#include <gtest/gtest.h>

#include <string>

#include "bits/seed256.hpp"
#include "common/rng.hpp"
#include "hash/keccak.hpp"

namespace rbc::hash {
namespace {

ByteSpan as_bytes(const std::string& s) {
  return ByteSpan{reinterpret_cast<const u8*>(s.data()), s.size()};
}

// FIPS 202 / NIST CAVP known-answer vectors.
TEST(Sha3_256, EmptyMessage) {
  EXPECT_EQ(sha3_256(as_bytes("")).to_hex(),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3_256, Abc) {
  EXPECT_EQ(sha3_256(as_bytes("abc")).to_hex(),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3_256, TwoBlockMessage) {
  EXPECT_EQ(
      sha3_256(
          as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .to_hex(),
      "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376");
}

TEST(Sha3_256, RateBoundaryMessages) {
  // Messages straddling the 136-byte rate exercise block-boundary padding.
  for (std::size_t len : {135u, 136u, 137u, 271u, 272u, 273u}) {
    const std::string msg(len, 'q');
    const auto d = sha3_256(as_bytes(msg));
    // Incremental absorb must agree regardless of chunking.
    KeccakSponge sponge(136, 0x06);
    for (std::size_t i = 0; i < len; i += 17) {
      const std::size_t take = std::min<std::size_t>(17, len - i);
      sponge.absorb(as_bytes(msg.substr(i, take)));
    }
    Digest256 d2;
    sponge.squeeze(MutByteSpan{d2.bytes.data(), d2.bytes.size()});
    EXPECT_EQ(d2, d) << "len=" << len;
  }
}

TEST(Sha3_224, KnownAnswers) {
  EXPECT_EQ(sha3_224(as_bytes("")).to_hex(),
            "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7");
  EXPECT_EQ(sha3_224(as_bytes("abc")).to_hex(),
            "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf");
  EXPECT_EQ(
      sha3_224(
          as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .to_hex(),
      "8a24108b154ada21c9fd5574494479ba5c7e7ab76ef264ead0fcce33");
}

TEST(Sha3_384, KnownAnswers) {
  EXPECT_EQ(sha3_384(as_bytes("")).to_hex(),
            "0c63a75b845e4f7d01107d852e4c2485c51a50aaaa94fc61995e71bbee983a2a"
            "c3713831264adb47fb6bd1e058d5f004");
  EXPECT_EQ(sha3_384(as_bytes("abc")).to_hex(),
            "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b2"
            "98d88cea927ac7f539f1edf228376d25");
  EXPECT_EQ(
      sha3_384(
          as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .to_hex(),
      "991c665755eb3a4b6bbdfb75c78a492e8c56a22c5c4d7e429bfdbc32b9d4ad5a"
      "a04a1f076e62fea19eef51acd0657c22");
}

TEST(Sha3Family, DigestSizesMatchFips202) {
  EXPECT_EQ(sha3_224(as_bytes("x")).bytes.size(), 28u);
  EXPECT_EQ(sha3_256(as_bytes("x")).bytes.size(), 32u);
  EXPECT_EQ(sha3_384(as_bytes("x")).bytes.size(), 48u);
  EXPECT_EQ(sha3_512(as_bytes("x")).bytes.size(), 64u);
}

TEST(Sha3_512, EmptyMessage) {
  EXPECT_EQ(sha3_512(as_bytes("")).to_hex(),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6"
            "15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26");
}

TEST(Sha3_512, Abc) {
  EXPECT_EQ(sha3_512(as_bytes("abc")).to_hex(),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e"
            "10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0");
}

TEST(Shake128, EmptyMessageStream) {
  Shake128 xof;
  xof.absorb(as_bytes(""));
  Bytes out(32);
  xof.squeeze(out);
  EXPECT_EQ(rbc::to_hex(out),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Shake256, EmptyMessageStream) {
  Shake256 xof;
  xof.absorb(as_bytes(""));
  Bytes out(32);
  xof.squeeze(out);
  EXPECT_EQ(rbc::to_hex(out),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f");
}

TEST(Shake128, AbcVector) {
  Shake128 xof;
  xof.absorb(as_bytes("abc"));
  Bytes out(32);
  xof.squeeze(out);
  EXPECT_EQ(rbc::to_hex(out),
            "5881092dd818bf5cf8a3ddb793fbcba74097d5c526a6d35f97b83351940f2cc8");
}

TEST(Shake256, AbcVector) {
  Shake256 xof;
  xof.absorb(as_bytes("abc"));
  Bytes out(48);
  xof.squeeze(out);
  EXPECT_EQ(rbc::to_hex(out),
            "483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739"
            "d5a15bef186a5386c75744c0527e1faa");
}

TEST(Sha3_256, MillionAs) {
  KeccakSponge sponge(136, 0x06);
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sponge.absorb(as_bytes(chunk));
  Digest256 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  EXPECT_EQ(d.to_hex(),
            "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1");
}

TEST(Sha3_256, RandomizedIncrementalAbsorbProperty) {
  // Any chunking of the message must give the same digest.
  rbc::Xoshiro256 rng(0x5eed);
  Bytes msg(613);
  for (auto& b : msg) b = static_cast<u8>(rng.next());
  const Digest256 reference = sha3_256(msg);
  for (int trial = 0; trial < 30; ++trial) {
    KeccakSponge sponge(136, 0x06);
    std::size_t pos = 0;
    while (pos < msg.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.next_below(100), msg.size() - pos);
      sponge.absorb(ByteSpan{msg.data() + pos, take});
      pos += take;
    }
    Digest256 d;
    sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
    EXPECT_EQ(d, reference) << "trial " << trial;
  }
}

TEST(Shake128, SqueezeInPiecesMatchesOneShot) {
  Shake128 a, b;
  a.absorb(as_bytes("stream me"));
  b.absorb(as_bytes("stream me"));
  Bytes big(500);
  a.squeeze(big);
  Bytes pieces(500);
  // Odd-sized squeezes crossing the 168-byte rate boundary.
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 7u, 160u, 168u, 100u, 64u}) {
    b.squeeze(MutByteSpan{pieces.data() + off, chunk});
    off += chunk;
  }
  ASSERT_EQ(off, 500u);
  EXPECT_EQ(pieces, big);
}

TEST(KeccakF1600, PermutationOfZeroState) {
  // Known-answer: first lane of Keccak-f[1600] applied to the all-zero state.
  u64 state[25] = {};
  keccak_f1600(state);
  EXPECT_EQ(state[0], 0xf1258f7940e1dde7ULL);
  EXPECT_EQ(state[1], 0x84d5ccf933c0478aULL);
  EXPECT_EQ(state[24], 0xeaf1ff7b5ceca249ULL);
}

TEST(KeccakF1600, PermutationIsNotIdentityAndDeterministic) {
  u64 a[25], b[25];
  for (int i = 0; i < 25; ++i)
    a[i] = b[i] = u64{0x0123456789abcdef} * static_cast<u64>(i + 1);
  keccak_f1600(a);
  keccak_f1600(b);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_NE(a[0], 0x0123456789abcdefULL);
}

TEST(Sha3SeedFastPath, MatchesGenericSponge) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const Seed256 s = Seed256::random(rng);
    EXPECT_EQ(sha3_256_seed(s), sha3_256_seed_generic(s));
  }
}

TEST(Sha3SeedFastPath, ZeroSeedKnownAnswer) {
  EXPECT_EQ(sha3_256_seed(Seed256::zero()), sha3_256(Bytes(32, 0)));
}

TEST(Sha3SeedFastPath, SensitiveToEveryBit) {
  const auto base_digest = sha3_256_seed(Seed256::zero());
  for (int bit = 0; bit < 256; bit += 11) {
    EXPECT_NE(sha3_256_seed(with_flipped_bit(Seed256::zero(), bit)),
              base_digest);
  }
}

TEST(Sha3SeedFastPath, DistinctSeedsDistinctDigests) {
  Xoshiro256 rng(4);
  const Seed256 a = Seed256::random(rng);
  const Seed256 b = Seed256::random(rng);
  EXPECT_NE(sha3_256_seed(a), sha3_256_seed(b));
}

TEST(KeccakSponge, ResetClearsState) {
  KeccakSponge sponge(136, 0x06);
  sponge.absorb(as_bytes("garbage"));
  sponge.reset();
  Digest256 d;
  sponge.squeeze(MutByteSpan{d.bytes.data(), d.bytes.size()});
  EXPECT_EQ(d.to_hex(),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

}  // namespace
}  // namespace rbc::hash
