// End-to-end tests of the bit-sliced APU search pipeline (hash batches +
// associative match detection).
#include <gtest/gtest.h>

#include "apu/search_kernel.hpp"
#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "hash/keccak.hpp"
#include "hash/sha1.hpp"

namespace rbc::apu {
namespace {

TEST(AssociativeMatch, DetectsExactLane) {
  Xoshiro256 rng(1);
  std::array<hash::Digest256, kLanes> digests;
  for (auto& d : digests) {
    for (auto& b : d.bytes) b = static_cast<u8>(rng.next());
  }
  VectorUnit vu;
  // No lane matches an unrelated target.
  hash::Digest256 target;
  for (auto& b : target.bytes) b = static_cast<u8>(rng.next());
  EXPECT_EQ(associative_match(digests, target, vu), 0u);
  // Exactly lane 37 matches its own digest.
  const Plane mask = associative_match(digests, digests[37], vu);
  EXPECT_EQ(mask, 1ULL << 37);
}

TEST(AssociativeMatch, CostIsTwoOpsPerDigestBit) {
  std::array<hash::Digest160, kLanes> digests{};
  VectorUnit vu;
  associative_match(digests, hash::Digest160{}, vu);
  // 160 bits x (xor + and) + nots: vnot also counted -> 3 ops/bit here.
  EXPECT_EQ(vu.counts().total(), 160u * 3u);
}

TEST(ApuBitslicedSearch, FindsSeedAtDistanceZero) {
  Xoshiro256 rng(2);
  const Seed256 s = Seed256::random(rng);
  comb::ChaseFactory factory;
  VectorUnit vu;
  const auto r = apu_bitsliced_search<hash::Digest256, sha3_256_seed_x64>(
      s, hash::sha3_256_seed(s), 2, factory, vu);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 0);
  EXPECT_EQ(r.seed, s);
}

class ApuSearchDistance : public ::testing::TestWithParam<int> {};

TEST_P(ApuSearchDistance, Sha3FindsPlantedSeed) {
  const int d = GetParam();
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  for (int i = 0; i < d; ++i) truth.flip_bit(10 + 37 * i);

  comb::ChaseFactory factory;
  VectorUnit vu;
  const auto r = apu_bitsliced_search<hash::Digest256, sha3_256_seed_x64>(
      base, hash::sha3_256_seed(truth), 2, factory, vu);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, d);
  EXPECT_EQ(r.seed, truth);
  EXPECT_GT(r.column_cycles, 0u);
}

TEST_P(ApuSearchDistance, Sha1FindsPlantedSeed) {
  const int d = GetParam();
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  for (int i = 0; i < d; ++i) truth.flip_bit(200 - 41 * i);

  comb::GosperFactory factory;
  VectorUnit vu;
  const auto r = apu_bitsliced_search<hash::Digest160, sha1_seed_x64>(
      base, hash::sha1_seed(truth), 2, factory, vu);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, d);
  EXPECT_EQ(r.seed, truth);
}

INSTANTIATE_TEST_SUITE_P(Distances, ApuSearchDistance,
                         ::testing::Values(1, 2));

TEST(ApuBitslicedSearch, ExhaustsBallWhenTargetAbsent) {
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);
  comb::ChaseFactory factory;
  VectorUnit vu;
  const auto r = apu_bitsliced_search<hash::Digest160, sha1_seed_x64>(
      base, hash::sha1_seed(unrelated), 1, factory, vu);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, 257u);  // 1 + 256, in ceil(257/64)=5 batches
}

TEST(ApuBitslicedSearch, ColumnCyclesScaleWithBatches) {
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  const Seed256 unrelated = Seed256::random(rng);

  comb::ChaseFactory f1, f2;
  VectorUnit vu1, vu2;
  const auto r1 = apu_bitsliced_search<hash::Digest160, sha1_seed_x64>(
      base, hash::sha1_seed(unrelated), 1, f1, vu1);
  const auto r2 = apu_bitsliced_search<hash::Digest160, sha1_seed_x64>(
      base, hash::sha1_seed(unrelated), 2, f2, vu2);
  EXPECT_GT(r2.seeds_hashed, r1.seeds_hashed);
  // d=2 runs ceil(32897/64)+... batches vs 5+1; cycles scale accordingly.
  EXPECT_GT(r2.column_cycles, 50 * r1.column_cycles);
}

TEST(ApuBitslicedSearch, AgreesWithScalarSearchOnSeedsVisited) {
  // Batch padding must not change the seeds-visited count at d=1.
  Xoshiro256 rng(7);
  const Seed256 base = Seed256::random(rng);
  Seed256 truth = base;
  truth.flip_bit(255);  // near the end of the shell for Chase's order

  comb::ChaseFactory factory;
  VectorUnit vu;
  const auto r = apu_bitsliced_search<hash::Digest256, sha3_256_seed_x64>(
      base, hash::sha3_256_seed(truth), 1, factory, vu);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.seeds_hashed, 257u);
  EXPECT_GE(r.seeds_hashed, 1u);
}

}  // namespace
}  // namespace rbc::apu
