#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "combinatorics/algorithm515.hpp"

namespace rbc::comb {
namespace {

TEST(Unrank515, FirstAndLast) {
  EXPECT_EQ(unrank_lexicographic(0, 3), Combination::first(3));
  const u128 last = binomial128(256, 3) - 1;
  EXPECT_EQ(unrank_lexicographic(last, 3), Combination({253, 254, 255}));
}

TEST(Unrank515, MatchesSuccessorEnumeration) {
  const int n = 9, k = 4;
  Combination c = Combination::first(k);
  u128 rank = 0;
  do {
    EXPECT_EQ(unrank_lexicographic(rank, k, n), c) << "rank "
                                                   << u128_to_string(rank);
    ++rank;
  } while (next_lexicographic(c, n));
  EXPECT_EQ(rank, binomial128(n, k));
}

TEST(Unrank515, RoundTripWithRank) {
  rbc::Xoshiro256 rng(7);
  for (int k : {1, 2, 3, 5, 8}) {
    const u128 total = binomial128(256, k);
    for (int i = 0; i < 50; ++i) {
      const u128 r = static_cast<u128>(rng.next()) % total;
      const Combination c = unrank_lexicographic(r, k);
      EXPECT_EQ(rank_lexicographic(c), r);
    }
  }
}

TEST(Unrank515, OutOfRangeRankRejected) {
  EXPECT_THROW(unrank_lexicographic(binomial128(8, 2), 2, 8),
               rbc::CheckFailure);
}

TEST(Iterator515, UnrankEachAndSuccessorModesAgree) {
  const int n = 11, k = 4;
  const u64 total = binomial64(n, k);
  Algorithm515Iterator unrank_each(k, 0, total, Alg515Mode::kUnrankEach, n);
  Algorithm515Iterator successor(k, 0, total, Alg515Mode::kSuccessor, n);
  Seed256 a, b;
  for (u64 i = 0; i < total; ++i) {
    ASSERT_TRUE(unrank_each.next(a));
    ASSERT_TRUE(successor.next(b));
    EXPECT_EQ(a, b) << "index " << i;
  }
  EXPECT_FALSE(unrank_each.next(a));
  EXPECT_FALSE(successor.next(b));
}

TEST(Iterator515, MidSequenceStart) {
  const int n = 10, k = 3;
  Algorithm515Iterator it(k, 40, 5, Alg515Mode::kUnrankEach, n);
  Seed256 mask;
  for (u128 expected_rank = 40; it.next(mask); ++expected_rank) {
    EXPECT_EQ(rank_lexicographic(Combination::from_mask(mask), n),
              expected_rank);
  }
  EXPECT_EQ(it.produced(), 5u);
}

class Partition515
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Partition515, ChunksTileTheFullSequenceDisjointly) {
  const auto [n, k, p] = GetParam();
  for (Alg515Mode mode : {Alg515Mode::kUnrankEach, Alg515Mode::kSuccessor}) {
    Algorithm515Factory factory(mode, n);
    factory.prepare(k, p);
    std::set<std::string> seen;
    for (int r = 0; r < p; ++r) {
      auto it = factory.make(r);
      Seed256 mask;
      while (it.next(mask)) {
        EXPECT_EQ(mask.popcount(), k);
        EXPECT_TRUE(seen.insert(mask.to_hex()).second);
      }
    }
    EXPECT_EQ(seen.size(), binomial64(n, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, Partition515,
    ::testing::Values(std::tuple{8, 3, 1}, std::tuple{8, 3, 4},
                      std::tuple{10, 4, 7}, std::tuple{12, 2, 5},
                      std::tuple{9, 5, 3}, std::tuple{10, 1, 16}));

TEST(Factory515, ChunkBoundariesAreContiguous) {
  Algorithm515Factory factory(Alg515Mode::kSuccessor);
  factory.prepare(5, 13);
  // Last mask of chunk r and first mask of chunk r+1 must be lexicographic
  // neighbours.
  auto first_of = [&](int r) {
    auto it = factory.make(r);
    Seed256 m;
    RBC_CHECK(it.next(m));
    return Combination::from_mask(m);
  };
  const u128 total = binomial128(256, 5);
  for (int r = 0; r + 1 < 13; ++r) {
    const u128 expected = total * static_cast<u128>(r + 1) / 13;
    EXPECT_EQ(rank_lexicographic(first_of(r + 1)), expected);
  }
}

}  // namespace
}  // namespace rbc::comb
