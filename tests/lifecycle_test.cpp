// Session-key lifecycle (one-time keys, §1/§2.1) and enrollment-database
// persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "rbc/protocol.hpp"

namespace rbc {
namespace {

// --- RegistrationAuthority lifecycle ------------------------------------------

TEST(SessionKeys, LookupHonoursTtl) {
  RegistrationAuthority ra;
  ra.set_key_ttl(10.0);
  ra.update(1, Bytes{1, 2, 3});
  ASSERT_TRUE(ra.lookup(1).has_value());
  ra.advance_time(9.99);
  EXPECT_TRUE(ra.lookup(1).has_value());
  ra.advance_time(0.02);
  EXPECT_FALSE(ra.lookup(1).has_value()) << "key must expire after TTL";
  // Audit entry survives expiry.
  ASSERT_TRUE(ra.entry(1).has_value());
  EXPECT_EQ(ra.entry(1)->public_key, (Bytes{1, 2, 3}));
}

TEST(SessionKeys, UpdateRotatesAndRefreshes) {
  RegistrationAuthority ra;
  ra.set_key_ttl(5.0);
  ra.update(7, Bytes{1});
  EXPECT_EQ(ra.entry(7)->rotation, 0u);
  ra.advance_time(4.0);
  ra.update(7, Bytes{2});
  EXPECT_EQ(ra.entry(7)->rotation, 1u);
  ra.advance_time(4.0);  // 8.0 total; second key registered at 4.0, ttl 5
  EXPECT_TRUE(ra.lookup(7).has_value());
  EXPECT_EQ(*ra.lookup(7), (Bytes{2}));
}

TEST(SessionKeys, RevokeInvalidatesImmediately) {
  RegistrationAuthority ra;
  ra.update(3, Bytes{9});
  ASSERT_TRUE(ra.lookup(3).has_value());
  EXPECT_TRUE(ra.revoke(3));
  EXPECT_FALSE(ra.lookup(3).has_value());
  EXPECT_FALSE(ra.revoke(99));
}

TEST(SessionKeys, ValidationOfArguments) {
  RegistrationAuthority ra;
  EXPECT_THROW(ra.set_key_ttl(0.0), CheckFailure);
  EXPECT_THROW(ra.advance_time(-1.0), CheckFailure);
}

TEST(SessionKeys, ReauthenticationRotatesTheSessionKey) {
  // The one-time-key property end to end: because each session's recovered
  // seed carries fresh PUF noise, consecutive authentications register
  // different public keys for the same device.
  puf::SramPufModel::Params params;
  params.num_addresses = 1;  // force the same address every session
  puf::SramPufModel device(params, 777);
  EnrollmentDatabase db(crypto::Aes128::Key{0x21});
  Xoshiro256 rng(3);
  db.enroll(1, device, 60, 0.05, rng);
  RegistrationAuthority ra;
  CaConfig cfg;
  cfg.max_distance = 2;
  EngineConfig ecfg;
  ecfg.host_threads = 2;
  CertificateAuthority ca(cfg, std::move(db), make_backend("cpu", ecfg), &ra);
  ClientConfig ccfg;
  ccfg.device_id = 1;
  ccfg.injected_distance = 2;
  Client client(ccfg, &device, 5);

  const auto s1 = run_authentication(client, ca, ra);
  ASSERT_TRUE(s1.result.authenticated);
  const Bytes key1 = s1.registered_public_key;
  const auto s2 = run_authentication(client, ca, ra);
  ASSERT_TRUE(s2.result.authenticated);
  EXPECT_NE(s2.registered_public_key, key1)
      << "fresh noise must produce a fresh session key";
  EXPECT_EQ(ra.entry(1)->rotation, 1u);
}

// --- database persistence -------------------------------------------------------

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

crypto::Aes128::Key db_key() {
  crypto::Aes128::Key k{};
  k[5] = 0xdb;
  return k;
}

TEST(DatabasePersistence, SaveLoadRoundTrip) {
  TempFile file("rbc_db_roundtrip.bin");
  puf::SramPufModel::Params params;
  params.num_addresses = 3;
  puf::SramPufModel device_a(params, 1), device_b(params, 2);

  EnrollmentDatabase db(db_key());
  Xoshiro256 rng(1);
  db.enroll(10, device_a, 40, 0.05, rng);
  db.enroll(20, device_b, 40, 0.05, rng);
  db.save(file.path);

  const EnrollmentDatabase loaded =
      EnrollmentDatabase::load_from_file(file.path, db_key());
  EXPECT_EQ(loaded.size(), 2u);
  for (u64 id : {10ULL, 20ULL}) {
    ASSERT_TRUE(loaded.contains(id));
    const auto original = db.load(id);
    const auto restored = loaded.load(id);
    ASSERT_EQ(restored.image.num_addresses(), original.image.num_addresses());
    for (u32 a = 0; a < original.image.num_addresses(); ++a) {
      EXPECT_EQ(restored.image.word(a), original.image.word(a));
      EXPECT_EQ(restored.masks[a].stable_bits(),
                original.masks[a].stable_bits());
    }
  }
}

TEST(DatabasePersistence, FileStaysEncrypted) {
  TempFile file("rbc_db_encrypted.bin");
  puf::SramPufModel::Params params;
  params.num_addresses = 2;
  puf::SramPufModel device(params, 3);
  EnrollmentDatabase db(db_key());
  Xoshiro256 rng(2);
  db.enroll(1, device, 40, 0.05, rng);
  db.save(file.path);

  std::ifstream in(file.path, std::ios::binary);
  Bytes contents((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  const auto word = device.enrolled_word(0).to_bytes();
  EXPECT_EQ(std::search(contents.begin(), contents.end(), word.begin(),
                        word.end()),
            contents.end())
      << "plaintext PUF image leaked into the database file";
}

TEST(DatabasePersistence, WrongKeyYieldsGarbageNotPlaintext) {
  TempFile file("rbc_db_wrongkey.bin");
  puf::SramPufModel::Params params;
  params.num_addresses = 2;
  puf::SramPufModel device(params, 4);
  EnrollmentDatabase db(db_key());
  Xoshiro256 rng(3);
  db.enroll(1, device, 40, 0.05, rng);
  db.save(file.path);

  crypto::Aes128::Key wrong = db_key();
  wrong[0] ^= 0x01;
  const EnrollmentDatabase loaded =
      EnrollmentDatabase::load_from_file(file.path, wrong);
  // Decryption with the wrong key corrupts the length header, which the
  // record parser rejects.
  EXPECT_THROW(loaded.load(1), CheckFailure);
}

TEST(DatabasePersistence, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(
      EnrollmentDatabase::load_from_file("/nonexistent/rbc.bin", db_key()),
      CheckFailure);

  TempFile file("rbc_db_corrupt.bin");
  {
    std::ofstream out(file.path, std::ios::binary);
    out << "NOTADATABASE";
  }
  EXPECT_THROW(EnrollmentDatabase::load_from_file(file.path, db_key()),
               CheckFailure);
}

TEST(DatabasePersistence, TruncatedFileRejected) {
  TempFile file("rbc_db_trunc.bin");
  puf::SramPufModel::Params params;
  params.num_addresses = 2;
  puf::SramPufModel device(params, 5);
  EnrollmentDatabase db(db_key());
  Xoshiro256 rng(4);
  db.enroll(1, device, 40, 0.05, rng);
  db.save(file.path);

  // Chop the file part-way through the record.
  const auto full_size = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, full_size - 16);
  EXPECT_THROW(EnrollmentDatabase::load_from_file(file.path, db_key()),
               CheckFailure);
}

TEST(DatabasePersistence, LoadedDatabaseServesAuthentication) {
  TempFile file("rbc_db_serve.bin");
  puf::SramPufModel::Params params;
  params.num_addresses = 2;
  puf::SramPufModel device(params, 6);
  {
    EnrollmentDatabase db(db_key());
    Xoshiro256 rng(5);
    db.enroll(1, device, 60, 0.05, rng);
    db.save(file.path);
  }

  EnrollmentDatabase db = EnrollmentDatabase::load_from_file(file.path, db_key());
  RegistrationAuthority ra;
  CaConfig cfg;
  cfg.max_distance = 2;
  EngineConfig ecfg;
  ecfg.host_threads = 2;
  CertificateAuthority ca(cfg, std::move(db), make_backend("gpu", ecfg), &ra);
  ClientConfig ccfg;
  ccfg.device_id = 1;
  ccfg.injected_distance = 1;
  Client client(ccfg, &device, 8);
  const auto session = run_authentication(client, ca, ra);
  EXPECT_TRUE(session.result.authenticated);
}

}  // namespace
}  // namespace rbc
