// The deterministic fault-injection layer and the chaos harness built on it.
//
// Four suites, one per layer:
//   ChaosPlan     — FaultPlan's seed-reproducibility contract: fixed draw
//                   count, fork purity, schedule determinism across seeds.
//   ChaosChannel  — what each fault does to the wire: drop/duplicate/
//                   corrupt/reorder/stall semantics, counters, and the
//                   zero-fault byte-identity guarantee.
//   ChaosProtocol — the stop-and-wait ARQ: survival under compound faults,
//                   replay from a seed, graceful abandonment on total loss.
//   ChaosServer   — the 4-shard chaos run: no hung drivers, exact counter
//                   reconciliation, 1-vs-4-shard verdict equivalence, and
//                   failure replay from the logged net_salt.
//
// Chaos* is also a TSan target (scripts/ci.sh adds it to the tsan filter):
// the server suites exercise lossy sessions across concurrent drivers.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "server/auth_server.hpp"

namespace rbc::server {
namespace {

crypto::Aes128::Key master_key() {
  crypto::Aes128::Key k{};
  k[0] = 0x42;
  return k;
}

puf::SramPufModel::Params device_params() {
  puf::SramPufModel::Params p;
  p.num_addresses = 4;
  p.erratic_cell_fraction = 0.04;
  p.stable_flip_probability = 0.004;
  p.erratic_flip_probability = 0.30;
  return p;
}

/// Identically seeded CA+RA stacks: two ChaosFixtures built with the same
/// arguments run byte-identical protocol state, which is what every
/// reproducibility assertion in this file compares against.
struct ChaosFixture {
  std::vector<std::unique_ptr<puf::SramPufModel>> devices;
  std::vector<u64> device_ids;
  RegistrationAuthority ra;
  std::unique_ptr<CertificateAuthority> ca;

  explicit ChaosFixture(int num_devices, int max_distance = 1,
                        u64 id_base = 9000) {
    EnrollmentDatabase db(master_key());
    for (int i = 0; i < num_devices; ++i) {
      const u64 id = id_base + static_cast<u64>(i);
      devices.push_back(
          std::make_unique<puf::SramPufModel>(device_params(), id));
      device_ids.push_back(id);
      Xoshiro256 enroll_rng(id ^ 0xE27011);
      db.enroll(id, *devices.back(), 100, 0.05, enroll_rng);
    }
    CaConfig ca_cfg;
    ca_cfg.max_distance = max_distance;
    ca_cfg.time_threshold_s = 600.0;
    EngineConfig engine_cfg;
    engine_cfg.host_threads = 1;
    ca = std::make_unique<CertificateAuthority>(
        ca_cfg, std::move(db), make_backend("cpu", engine_cfg), &ra);
  }

  std::unique_ptr<Client> make_client(int device_index, u64 rng_salt) const {
    const std::size_t index = static_cast<std::size_t>(device_index);
    ClientConfig ccfg;
    ccfg.device_id = device_ids[index];
    ccfg.injected_distance = 1;
    return std::make_unique<Client>(ccfg, devices[index].get(),
                                    ccfg.device_id ^ rng_salt);
  }
};

bool same_decision(const net::FaultDecision& a, const net::FaultDecision& b) {
  return a.drop == b.drop && a.duplicate == b.duplicate &&
         a.corrupt == b.corrupt && a.corrupt_bit == b.corrupt_bit &&
         a.reorder == b.reorder && a.stall_s == b.stall_s;
}

net::FaultConfig mixed_faults() {
  net::FaultConfig f;
  f.drop_rate = 0.2;
  f.duplicate_rate = 0.1;
  f.corrupt_rate = 0.1;
  f.reorder_rate = 0.1;
  f.stall_rate = 0.1;
  f.stall_s = 0.05;
  return f;
}

// ---------------------------------------------------------------------------
// ChaosPlan: the seed-reproducibility contract.

TEST(ChaosPlan, DefaultPlanIsInactiveAndZeroRatesStayInactive) {
  EXPECT_FALSE(net::FaultPlan().active());
  EXPECT_FALSE(net::FaultPlan(net::FaultConfig{}, 0x1234).active());
  net::FaultConfig f;
  f.drop_rate = 1e-9;
  EXPECT_TRUE(net::FaultPlan(f, 0).active());
}

TEST(ChaosPlan, RejectsOutOfRangeRates) {
  net::FaultConfig f;
  f.drop_rate = 1.5;
  EXPECT_THROW(net::FaultPlan(f, 0), CheckFailure);
  f.drop_rate = -0.1;
  EXPECT_THROW(net::FaultPlan(f, 0), CheckFailure);
  f = net::FaultConfig{};
  f.stall_s = -1.0;
  EXPECT_THROW(net::FaultPlan(f, 0), CheckFailure);
}

TEST(ChaosPlan, SameSeedSameSchedule) {
  const net::FaultConfig cfg = mixed_faults();
  net::FaultPlan a(cfg, 0xFEED);
  net::FaultPlan b(cfg, 0xFEED);
  for (int i = 0; i < 512; ++i) {
    EXPECT_TRUE(same_decision(a.next(), b.next())) << "message " << i;
  }
}

TEST(ChaosPlan, ScheduleIsPureFunctionOfSeedAcrossManySeeds) {
  // The harness's replay contract, swept: for thousands of seeds, an
  // independently constructed plan reproduces the schedule decision for
  // decision, and at least some pairs of distinct seeds disagree (the seed
  // actually parameterizes the stream).
  const net::FaultConfig cfg = mixed_faults();
  int schedules_differing_from_seed0 = 0;
  net::FaultPlan reference(cfg, 0);
  std::vector<net::FaultDecision> seed0;
  for (int i = 0; i < 16; ++i) seed0.push_back(reference.next());

  for (u64 seed = 0; seed < 4096; ++seed) {
    net::FaultPlan a(cfg, seed);
    net::FaultPlan b(cfg, seed);
    bool differs = false;
    for (int i = 0; i < 16; ++i) {
      const net::FaultDecision da = a.next();
      ASSERT_TRUE(same_decision(da, b.next()))
          << "seed " << seed << " message " << i;
      if (!same_decision(da, seed0[static_cast<std::size_t>(i)]))
        differs = true;
    }
    if (seed != 0 && differs) ++schedules_differing_from_seed0;
  }
  EXPECT_GT(schedules_differing_from_seed0, 4000)
      << "seeds are not parameterizing the fault stream";
}

TEST(ChaosPlan, FixedDrawCountDecouplesFaultPositions) {
  // next() always consumes exactly six draws, so changing ONE rate must not
  // shift the stream feeding the others: corrupt_bit (draw #4) is identical
  // whether or not the drop gate (draw #1) fires.
  net::FaultConfig with_drops = mixed_faults();
  with_drops.drop_rate = 1.0;
  net::FaultConfig without_drops = with_drops;
  without_drops.drop_rate = 0.0;
  net::FaultPlan a(with_drops, 0xD00D);
  net::FaultPlan b(without_drops, 0xD00D);
  for (int i = 0; i < 256; ++i) {
    const net::FaultDecision da = a.next();
    const net::FaultDecision db = b.next();
    EXPECT_TRUE(da.drop) << "message " << i;
    EXPECT_FALSE(db.drop) << "message " << i;
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit) << "message " << i;
    EXPECT_EQ(da.corrupt, db.corrupt) << "message " << i;
    EXPECT_EQ(da.duplicate, db.duplicate) << "message " << i;
    EXPECT_EQ(da.reorder, db.reorder) << "message " << i;
    EXPECT_EQ(da.stall_s, db.stall_s) << "message " << i;
  }
}

TEST(ChaosPlan, ForkIsPureFunctionOfOriginalSeedAndSalt) {
  // fork() derives from the plan's ORIGINAL seed, not its stream position:
  // forking before or after draining decisions yields the same child.
  const net::FaultConfig cfg = mixed_faults();
  net::FaultPlan parent_fresh(cfg, 0xABCD);
  net::FaultPlan parent_drained(cfg, 0xABCD);
  for (int i = 0; i < 100; ++i) parent_drained.next();

  net::FaultPlan child_a = parent_fresh.fork(7);
  net::FaultPlan child_b = parent_drained.fork(7);
  for (int i = 0; i < 128; ++i) {
    EXPECT_TRUE(same_decision(child_a.next(), child_b.next()))
        << "message " << i;
  }
}

TEST(ChaosPlan, DifferentForkSaltsGiveIndependentStreams) {
  const net::FaultConfig cfg = mixed_faults();
  const net::FaultPlan parent(cfg, 0x5EED);
  net::FaultPlan a = parent.fork(1);
  net::FaultPlan b = parent.fork(2);
  int identical = 0;
  for (int i = 0; i < 256; ++i) {
    if (same_decision(a.next(), b.next())) ++identical;
  }
  EXPECT_LT(identical, 200) << "sibling forks are correlated";
}

// ---------------------------------------------------------------------------
// ChaosChannel: per-fault wire semantics and the zero-fault identity.

net::Message probe_message(u64 device_id) {
  net::HandshakeRequest h;
  h.device_id = device_id;
  return net::Message{h};
}

TEST(ChaosChannel, InactivePlanIsByteAndClockIdenticalToDefault) {
  // The tentpole's backstop: a constructed-but-all-zero FaultPlan must take
  // the EXACT lossless path — same received bytes, same logical clocks,
  // no fault counters.
  net::LatencyModel latency(0.15, 0.01, 0x11);
  net::Channel plain_a{latency}, plain_b{latency};
  net::Channel inert_a{latency, net::FaultPlan(net::FaultConfig{}, 0xF00D)},
      inert_b{latency, net::FaultPlan(net::FaultConfig{}, 0xF00D)};
  net::Channel::connect(plain_a, plain_b);
  net::Channel::connect(inert_a, inert_b);

  for (u64 i = 0; i < 8; ++i) {
    plain_a.send(probe_message(i));
    inert_a.send(probe_message(i));
    ASSERT_TRUE(plain_b.has_message());
    ASSERT_TRUE(inert_b.has_message());
    EXPECT_EQ(plain_b.receive_raw(), inert_b.receive_raw()) << "frame " << i;
  }
  EXPECT_DOUBLE_EQ(plain_a.elapsed_s(), inert_a.elapsed_s());
  EXPECT_DOUBLE_EQ(plain_b.elapsed_s(), inert_b.elapsed_s());
  const net::LinkStats& s = inert_a.link_stats();
  EXPECT_EQ(s.frames_sent, 8u);
  EXPECT_EQ(s.dropped + s.corrupted + s.duplicated + s.reordered + s.stalled,
            0u);
  EXPECT_FALSE(inert_a.faulty());
}

TEST(ChaosChannel, DropChargesSenderOnlyAndNeverDelivers) {
  net::FaultConfig f;
  f.drop_rate = 1.0;
  net::Channel a{net::LatencyModel(0.1), net::FaultPlan(f, 1)};
  net::Channel b{net::LatencyModel(0.1)};
  net::Channel::connect(a, b);

  a.send(probe_message(1));
  EXPECT_FALSE(b.has_message());
  EXPECT_DOUBLE_EQ(a.elapsed_s(), 0.1);  // the sender spent the air time
  EXPECT_DOUBLE_EQ(b.elapsed_s(), 0.0);  // the receiver never saw it
  EXPECT_EQ(a.link_stats().dropped, 1u);
  EXPECT_EQ(a.link_stats().frames_sent, 1u);
}

TEST(ChaosChannel, CorruptFlipsExactlyOneBit) {
  net::FaultConfig f;
  f.corrupt_rate = 1.0;
  net::Channel a{net::LatencyModel(0.0), net::FaultPlan(f, 2)};
  net::Channel b{net::LatencyModel(0.0)};
  net::Channel::connect(a, b);

  const Bytes sent = net::serialize(probe_message(0xDEAD));
  a.send(probe_message(0xDEAD));
  ASSERT_TRUE(b.has_message());
  const Bytes got = b.receive_raw();
  ASSERT_EQ(got.size(), sent.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    u8 diff = static_cast<u8>(sent[i] ^ got[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(a.link_stats().corrupted, 1u);
}

TEST(ChaosChannel, DuplicateDeliversTwoIdenticalCopies) {
  net::FaultConfig f;
  f.duplicate_rate = 1.0;
  net::Channel a{net::LatencyModel(0.0), net::FaultPlan(f, 3)};
  net::Channel b{net::LatencyModel(0.0)};
  net::Channel::connect(a, b);

  a.send(probe_message(7));
  ASSERT_TRUE(b.has_message());
  const Bytes first = b.receive_raw();
  ASSERT_TRUE(b.has_message());
  EXPECT_EQ(first, b.receive_raw());
  EXPECT_FALSE(b.has_message());
  EXPECT_EQ(a.link_stats().duplicated, 1u);
}

TEST(ChaosChannel, ReorderOvertakesQueuedFrames) {
  net::FaultConfig f;
  f.reorder_rate = 1.0;
  net::Channel a{net::LatencyModel(0.0), net::FaultPlan(f, 4)};
  net::Channel b{net::LatencyModel(0.0)};
  net::Channel::connect(a, b);

  // First send finds an empty peer inbox — reorder cannot fire.
  a.send(probe_message(1));
  a.send(probe_message(2));  // overtakes frame 1
  EXPECT_EQ(b.receive_raw(), net::serialize(probe_message(2)));
  EXPECT_EQ(b.receive_raw(), net::serialize(probe_message(1)));
  EXPECT_EQ(a.link_stats().reordered, 1u);
}

TEST(ChaosChannel, StallChargesExtraLatencyToBothEnds) {
  net::FaultConfig f;
  f.stall_rate = 1.0;
  f.stall_s = 0.5;
  net::Channel a{net::LatencyModel(0.1), net::FaultPlan(f, 5)};
  net::Channel b{net::LatencyModel(0.1)};
  net::Channel::connect(a, b);

  a.send(probe_message(1));
  EXPECT_DOUBLE_EQ(a.elapsed_s(), 0.6);
  EXPECT_DOUBLE_EQ(b.elapsed_s(), 0.6);  // delivered late, but delivered
  EXPECT_EQ(a.link_stats().stalled, 1u);
}

// ---------------------------------------------------------------------------
// ChaosProtocol: the ARQ exchange under fault plans.

RetryPolicy fast_retry() {
  RetryPolicy r;
  r.max_attempts = 8;
  r.timeout_s = 0.05;
  r.backoff = 2.0;
  r.max_timeout_s = 0.4;
  return r;
}

TEST(ChaosProtocol, ZeroFaultLinkOptionsMatchBaselineReport) {
  // Passing LinkOptions with an inactive plan must be indistinguishable from
  // passing no LinkOptions at all: verdict, distance, registered key, and
  // the deterministic Table-5 comm field all identical.
  auto run = [](const LinkOptions* link) {
    ChaosFixture f(1, 1, /*id_base=*/9100);
    auto client = f.make_client(0, 0xBA5E);
    return run_authentication(*client, *f.ca, f.ra,
                              net::LatencyModel(0.15, 0.0, 0), nullptr, link);
  };
  const SessionReport baseline = run(nullptr);
  LinkOptions inert;  // default FaultPlan: inactive
  const SessionReport with_link = run(&inert);

  ASSERT_TRUE(baseline.result.authenticated);
  EXPECT_EQ(with_link.result.authenticated, baseline.result.authenticated);
  EXPECT_EQ(with_link.result.found_distance, baseline.result.found_distance);
  EXPECT_EQ(with_link.registered_public_key, baseline.registered_public_key);
  EXPECT_DOUBLE_EQ(with_link.comm_time_s, baseline.comm_time_s);
  EXPECT_FALSE(with_link.transport_failed);
  EXPECT_EQ(with_link.link.retransmits, 0u);
  EXPECT_EQ(with_link.link.dropped, 0u);
}

TEST(ChaosProtocol, SurvivesCompoundFaultsAndReplaysFromSeed) {
  // Drops, duplicates, corruption and reordering all at once, across many
  // seeds: every exchange must terminate, and re-running a seed against a
  // fresh identically seeded stack must reproduce the verdict, the comm
  // clock, and every link counter.
  net::FaultConfig faults;
  faults.drop_rate = 0.2;
  faults.corrupt_rate = 0.1;
  faults.duplicate_rate = 0.1;
  faults.reorder_rate = 0.1;

  auto run = [&](u64 seed) {
    ChaosFixture f(1, 1, /*id_base=*/9200);
    auto client = f.make_client(0, 0xC1A0);
    LinkOptions link;
    link.faults = net::FaultPlan(faults, seed);
    link.retry = fast_retry();
    return run_authentication(*client, *f.ca, f.ra,
                              net::LatencyModel(0.01, 0.0, 0), nullptr, &link);
  };

  int survived = 0;
  for (u64 seed = 0; seed < 24; ++seed) {
    const SessionReport first = run(seed);
    const SessionReport replay = run(seed);
    EXPECT_EQ(replay.transport_failed, first.transport_failed)
        << "seed " << seed;
    EXPECT_EQ(replay.result.authenticated, first.result.authenticated)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(replay.comm_time_s, first.comm_time_s) << "seed " << seed;
    EXPECT_EQ(replay.link.retransmits, first.link.retransmits)
        << "seed " << seed;
    EXPECT_EQ(replay.link.dropped, first.link.dropped) << "seed " << seed;
    EXPECT_EQ(replay.link.corrupt_discarded, first.link.corrupt_discarded)
        << "seed " << seed;
    EXPECT_EQ(replay.link.duplicates_suppressed,
              first.link.duplicates_suppressed)
        << "seed " << seed;
    if (!first.transport_failed) {
      ++survived;
      EXPECT_TRUE(first.result.authenticated) << "seed " << seed;
      EXPECT_FALSE(first.registered_public_key.empty()) << "seed " << seed;
    }
  }
  // With 8 attempts against a ~30% per-frame loss rate, nearly all
  // exchanges should push through.
  EXPECT_GE(survived, 20);
}

TEST(ChaosProtocol, CorruptionIsDetectedNotDelivered) {
  // 100% corruption with retransmission disabled: the exchange must abandon
  // (every frame fails its envelope checks), never hand garbage upward.
  net::FaultConfig faults;
  faults.corrupt_rate = 1.0;
  ChaosFixture f(1, 1, /*id_base=*/9300);
  auto client = f.make_client(0, 0xBAD);
  LinkOptions link;
  link.faults = net::FaultPlan(faults, 0x7);
  link.retry.max_attempts = 3;
  link.retry.timeout_s = 0.01;
  link.retry.max_timeout_s = 0.02;
  const SessionReport report = run_authentication(
      *client, *f.ca, f.ra, net::LatencyModel(0.0), nullptr, &link);

  EXPECT_TRUE(report.transport_failed);
  EXPECT_FALSE(report.result.authenticated);
  EXPECT_EQ(report.link.corrupted, report.link.corrupt_discarded)
      << "every corrupted frame must be caught by the envelope checks";
  EXPECT_GT(report.link.corrupt_discarded, 0u);
}

TEST(ChaosProtocol, TotalLossAbandonsAfterBoundedRetries) {
  net::FaultConfig faults;
  faults.drop_rate = 1.0;
  ChaosFixture f(1, 1, /*id_base=*/9400);
  auto client = f.make_client(0, 0x10);
  LinkOptions link;
  link.faults = net::FaultPlan(faults, 0x9);
  link.retry.max_attempts = 4;
  link.retry.timeout_s = 0.01;
  link.retry.max_timeout_s = 0.08;
  const SessionReport report = run_authentication(
      *client, *f.ca, f.ra, net::LatencyModel(0.0), nullptr, &link);

  EXPECT_TRUE(report.transport_failed);
  EXPECT_FALSE(report.result.authenticated);
  EXPECT_TRUE(report.registered_public_key.empty());
  // The handshake never got through: exactly max_attempts sends, all
  // dropped, max_attempts timeouts, max_attempts - 1 retransmissions.
  EXPECT_EQ(report.link.frames_sent, 4u);
  EXPECT_EQ(report.link.dropped, 4u);
  EXPECT_EQ(report.link.timeouts, 4u);
  EXPECT_EQ(report.link.retransmits, 3u);
}

TEST(ChaosProtocol, ExpiredDeadlineStopsRetransmissionImmediately) {
  // A session whose budget is already gone must not run the backoff
  // schedule: the ARQ checks the deadline before every attempt.
  net::FaultConfig faults;
  faults.drop_rate = 1.0;
  ChaosFixture f(1, 1, /*id_base=*/9500);
  auto client = f.make_client(0, 0x11);
  LinkOptions link;
  link.faults = net::FaultPlan(faults, 0xA);
  link.retry = fast_retry();
  auto ctx = par::SearchContext::with_budget(1e-9);
  while (!ctx.check_deadline()) {
  }
  const SessionReport report = run_authentication(
      *client, *f.ca, f.ra, net::LatencyModel(0.0), &ctx, &link);

  EXPECT_TRUE(report.transport_failed);
  EXPECT_EQ(report.link.frames_sent, 0u) << "no send after the deadline";
  EXPECT_EQ(report.link.retransmits, 0u);
}

// ---------------------------------------------------------------------------
// ChaosServer: the sharded serving layer under a fault plan.

TEST(ChaosServer, FourShardChaosRunCompletesAndReconciles) {
  // The acceptance run: >= 500 lossy sessions across 4 shards at a <= 5%
  // drop rate. Every future resolves (no hung drivers), the quiescent
  // counter invariant holds exactly, and the aggregate wire counters match
  // the per-outcome reports.
  constexpr int kDevices = 64;
  constexpr int kSessions = 512;
  ChaosFixture f(kDevices, 1, /*id_base=*/9600);
  ServerConfig cfg;
  cfg.num_shards = 4;
  // Every shard's slice can hold the whole burst: routing is hash-skewed,
  // and this run measures chaos survival, not admission backpressure.
  cfg.max_queue_depth = kSessions * 4;
  cfg.max_in_flight = 8;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  cfg.fault.drop_rate = 0.05;
  cfg.fault.corrupt_rate = 0.02;
  cfg.fault.duplicate_rate = 0.02;
  cfg.fault.reorder_rate = 0.02;
  cfg.fault_seed = 0xC4A05;
  cfg.retry = fast_retry();
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(i % kDevices, 0x600D + static_cast<u64>(i)));
    futures.push_back(server.submit(clients.back().get(), 600.0,
                                    /*net_salt=*/static_cast<u64>(i)));
  }

  u64 accepted = 0, transport_failed = 0, authenticated = 0;
  u64 retransmits = 0, dropped = 0, corrupted = 0;
  std::vector<u64> failed_salts;
  for (int i = 0; i < kSessions; ++i) {
    const SessionOutcome outcome = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(outcome.net_salt, static_cast<u64>(i));
    ASSERT_TRUE(outcome.accepted) << "session " << i;
    ++accepted;
    retransmits += outcome.report.link.retransmits;
    dropped += outcome.report.link.dropped;
    corrupted += outcome.report.link.corrupted;
    if (outcome.transport_failed) {
      ++transport_failed;
      failed_salts.push_back(outcome.net_salt);
      EXPECT_EQ(outcome.reject_reason, RejectReason::kTransportFailure);
      EXPECT_FALSE(outcome.authenticated);
    } else if (outcome.authenticated) {
      ++authenticated;
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.submitted, stats.rejected + stats.completed);
  EXPECT_EQ(stats.completed, accepted);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_EQ(stats.transport_failed, transport_failed);
  EXPECT_EQ(stats.retransmits, retransmits);
  EXPECT_EQ(stats.frames_dropped, dropped);
  EXPECT_EQ(stats.frames_corrupted, corrupted);
  // At a ~10% compound fault rate over 2000+ frames the plan must have
  // actually fired, and the ARQ must have actually recovered.
  EXPECT_GT(stats.frames_dropped, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(authenticated, static_cast<u64>(kSessions) * 9 / 10);

  // Any session the run abandoned must replay from its logged salt alone:
  // transport survival is a pure function of (fault config, fault_seed,
  // net_salt, retry policy), independent of shard count and routing.
  ChaosFixture replay_fixture(1, 1, /*id_base=*/9700);
  for (std::size_t i = 0; i < failed_salts.size() && i < 5; ++i) {
    auto client = replay_fixture.make_client(0, 0xEE);
    LinkOptions link;
    link.faults = net::FaultPlan(cfg.fault, cfg.fault_seed)
                      .fork(failed_salts[i]);
    link.retry = cfg.retry;
    const SessionReport replay = run_authentication(
        *client, *replay_fixture.ca, replay_fixture.ra,
        net::LatencyModel(0.0), nullptr, &link);
    EXPECT_TRUE(replay.transport_failed)
        << "salt " << failed_salts[i] << " did not reproduce the failure";
  }
}

TEST(ChaosServer, SingleAndFourShardServersAgreeUnderIdenticalFaultPlans) {
  // The base plan is deliberately NOT shard-salted: with explicit per-
  // session salts and sequential submission, a 1-shard and a 4-shard server
  // must inject identical faults and reach identical outcomes, session by
  // session — sharding stays a serving-layer change even under chaos.
  constexpr int kDevices = 12;
  net::FaultConfig faults;
  faults.drop_rate = 0.4;
  faults.corrupt_rate = 0.1;
  faults.duplicate_rate = 0.1;

  auto run_with_shards = [&](int num_shards) {
    ChaosFixture f(kDevices, 1, /*id_base=*/9800);
    ServerConfig cfg;
    cfg.num_shards = num_shards;
    cfg.max_queue_depth = 64;
    cfg.max_in_flight = num_shards;
    cfg.session_budget_s = 600.0;
    cfg.per_message_latency_s = 0.0;
    cfg.fault = faults;
    cfg.fault_seed = 0x5A17;
    cfg.retry.max_attempts = 2;
    cfg.retry.timeout_s = 0.01;
    cfg.retry.max_timeout_s = 0.04;
    AuthServer server(cfg, f.ca.get(), &f.ra);
    std::vector<SessionOutcome> outcomes;
    for (int i = 0; i < kDevices; ++i) {
      auto client = f.make_client(i, 0xE1);
      outcomes.push_back(
          server.submit(client.get(), 600.0, 0xAB00 + static_cast<u64>(i))
              .get());
    }
    return outcomes;
  };

  const auto single = run_with_shards(1);
  const auto sharded = run_with_shards(4);
  ASSERT_EQ(single.size(), sharded.size());
  int failures = 0;
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].authenticated, sharded[i].authenticated)
        << "session " << i;
    EXPECT_EQ(single[i].transport_failed, sharded[i].transport_failed)
        << "session " << i;
    EXPECT_EQ(single[i].reject_reason, sharded[i].reject_reason)
        << "session " << i;
    EXPECT_EQ(single[i].report.link.retransmits,
              sharded[i].report.link.retransmits)
        << "session " << i;
    EXPECT_EQ(single[i].report.link.dropped, sharded[i].report.link.dropped)
        << "session " << i;
    EXPECT_DOUBLE_EQ(single[i].report.comm_time_s,
                     sharded[i].report.comm_time_s)
        << "session " << i;
    if (single[i].transport_failed) ++failures;
  }
  // With 3 attempts against a ~35% compound loss rate, the plan should
  // produce BOTH verdict kinds — otherwise the equivalence is vacuous.
  EXPECT_GT(failures, 0) << "fault plan produced no transport failures";
  EXPECT_LT(failures, static_cast<int>(single.size()));
}

TEST(ChaosServer, TotalLossResolvesEverySessionAsTransportFailure) {
  // A dead link must degrade gracefully: every session completes (no hung
  // drivers, no stuck futures) with the typed kTransportFailure reason.
  constexpr int kSessions = 16;
  ChaosFixture f(kSessions, 1, /*id_base=*/9900);
  ServerConfig cfg;
  cfg.num_shards = 2;
  cfg.max_queue_depth = kSessions * 2;  // either shard can hold the burst
  cfg.max_in_flight = 4;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  cfg.fault.drop_rate = 1.0;
  cfg.fault_seed = 0xDEAD;
  cfg.retry.max_attempts = 3;
  cfg.retry.timeout_s = 0.01;
  cfg.retry.max_timeout_s = 0.04;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::future<SessionOutcome>> futures;
  for (int i = 0; i < kSessions; ++i) {
    clients.push_back(f.make_client(i, 0xFA11));
    futures.push_back(
        server.submit(clients.back().get(), 600.0, static_cast<u64>(i)));
  }
  for (auto& future : futures) {
    const SessionOutcome outcome = future.get();
    ASSERT_TRUE(outcome.accepted);
    EXPECT_TRUE(outcome.transport_failed);
    EXPECT_EQ(outcome.reject_reason, RejectReason::kTransportFailure);
    EXPECT_FALSE(outcome.authenticated);
    EXPECT_FALSE(outcome.timed_out);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.transport_failed, static_cast<u64>(kSessions));
  EXPECT_EQ(stats.submitted, stats.rejected + stats.completed);
  EXPECT_EQ(stats.authenticated, 0u);
}

TEST(ChaosServer, FaultFreeConfigLeavesServerOutcomesUntouched) {
  // A server constructed with the default (inactive) FaultConfig must
  // behave exactly like the pre-fault server: no wire counters, no
  // transport failures, normal verdicts.
  ChaosFixture f(4, 1, /*id_base=*/10000);
  ServerConfig cfg;
  cfg.num_shards = 2;
  cfg.session_budget_s = 600.0;
  cfg.per_message_latency_s = 0.0;
  AuthServer server(cfg, f.ca.get(), &f.ra);

  for (int i = 0; i < 4; ++i) {
    auto client = f.make_client(i, 0xF1E1);
    const SessionOutcome outcome = server.submit(client.get()).get();
    ASSERT_TRUE(outcome.accepted);
    EXPECT_TRUE(outcome.authenticated);
    EXPECT_FALSE(outcome.transport_failed);
    EXPECT_EQ(outcome.report.link.retransmits, 0u);
    EXPECT_EQ(outcome.report.link.dropped, 0u);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.transport_failed, 0u);
  EXPECT_EQ(stats.retransmits, 0u);
  EXPECT_EQ(stats.frames_dropped, 0u);
  EXPECT_EQ(stats.frames_corrupted, 0u);
}

}  // namespace
}  // namespace rbc::server
