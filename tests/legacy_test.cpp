#include <gtest/gtest.h>

#include "combinatorics/chase382.hpp"
#include "common/rng.hpp"
#include "rbc/legacy.hpp"

namespace rbc {
namespace {

Seed256 flip_bits(Seed256 s, std::initializer_list<int> bits) {
  for (int b : bits) s.flip_bit(b);
  return s;
}

template <typename Keygen>
SearchResult legacy_search(const Seed256& base, const Seed256& truth,
                           int max_distance, int threads) {
  const Keygen keygen;
  comb::ChaseFactory factory;
  par::WorkerGroup pool(threads);
  SearchOptions opts;
  opts.max_distance = max_distance;
  opts.num_threads = threads;
  return legacy_rbc_search<Keygen>(base, keygen(truth), factory, pool, opts,
                                   keygen);
}

TEST(LegacyRbc, AesFindsSeedAtDistanceZero) {
  Xoshiro256 rng(1);
  const Seed256 base = Seed256::random(rng);
  const auto r = legacy_search<crypto::Aes128Keygen>(base, base, 1, 2);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 0);
}

TEST(LegacyRbc, AesFindsSeedAtDistanceTwo) {
  Xoshiro256 rng(2);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flip_bits(base, {13, 200});
  const auto r = legacy_search<crypto::Aes128Keygen>(base, truth, 2, 4);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 2);
  EXPECT_EQ(r.seed, truth);
}

TEST(LegacyRbc, SaberFindsSeedAtDistanceOne) {
  Xoshiro256 rng(3);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flip_bits(base, {77});
  const auto r = legacy_search<crypto::SaberLikeKeygen>(base, truth, 1, 4);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  EXPECT_EQ(r.seed, truth);
}

TEST(LegacyRbc, DilithiumFindsSeedAtDistanceOne) {
  Xoshiro256 rng(4);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flip_bits(base, {250});
  const auto r = legacy_search<crypto::DilithiumLikeKeygen>(base, truth, 1, 4);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.distance, 1);
  EXPECT_EQ(r.seed, truth);
}

TEST(LegacyRbc, FailsBeyondMaxDistance) {
  Xoshiro256 rng(5);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flip_bits(base, {1, 2, 3});
  const auto r = legacy_search<crypto::Aes128Keygen>(base, truth, 2, 2);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.seeds_hashed, 32897u);  // keys generated over the full ball
}

TEST(LegacyRbc, TimeoutAborts) {
  Xoshiro256 rng(6);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flip_bits(base, {9, 99});
  const crypto::SaberLikeKeygen keygen;
  comb::ChaseFactory factory;
  par::WorkerGroup pool(2);
  SearchOptions opts;
  opts.max_distance = 2;
  opts.num_threads = 2;
  opts.timeout_s = 0.0;
  const auto r = legacy_rbc_search<crypto::SaberLikeKeygen>(
      base, keygen(truth), factory, pool, opts, keygen);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.timed_out);
}

TEST(LegacyRbc, SaltedRequiresFarFewerExpensiveOps) {
  // The paper's core claim, demonstrated functionally: for the same search,
  // the legacy engine runs keygen per candidate while the salted engine runs
  // exactly ONE keygen (after the search). Here: count candidate operations.
  Xoshiro256 rng(7);
  const Seed256 base = Seed256::random(rng);
  const Seed256 truth = flip_bits(base, {42});
  const auto legacy = legacy_search<crypto::Aes128Keygen>(base, truth, 1, 1);
  EXPECT_TRUE(legacy.found);
  // Candidate keygens == candidate hashes for the same traversal; the saving
  // is that each salted candidate op is a hash, and keygen runs once.
  EXPECT_GE(legacy.seeds_hashed, 1u);
}

}  // namespace
}  // namespace rbc
