#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/pqc_keygen.hpp"
#include "crypto/salt.hpp"

namespace rbc::crypto {
namespace {

template <typename Keygen>
class KeygenTest : public ::testing::Test {
 protected:
  Keygen keygen;
};

using KeygenTypes =
    ::testing::Types<Aes128Keygen, SaberLikeKeygen, DilithiumLikeKeygen,
                     KyberLikeKeygen, WotsKeygen>;
TYPED_TEST_SUITE(KeygenTest, KeygenTypes);

TYPED_TEST(KeygenTest, Deterministic) {
  Xoshiro256 rng(1);
  const Seed256 seed = Seed256::random(rng);
  EXPECT_EQ(this->keygen(seed), this->keygen(seed));
}

TYPED_TEST(KeygenTest, SeedSensitivity) {
  Xoshiro256 rng(2);
  const Seed256 seed = Seed256::random(rng);
  // A single flipped bit must change the public key (the property the RBC
  // search relies on to discriminate candidates).
  for (int bit : {0, 100, 255}) {
    EXPECT_NE(this->keygen(seed), this->keygen(with_flipped_bit(seed, bit)));
  }
}

TYPED_TEST(KeygenTest, NonEmptyAndStableSize) {
  Xoshiro256 rng(3);
  const auto pk1 = this->keygen(Seed256::random(rng));
  const auto pk2 = this->keygen(Seed256::random(rng));
  EXPECT_FALSE(pk1.empty());
  EXPECT_EQ(pk1.size(), pk2.size());
}

TEST(KeygenSizes, MatchSchemeShapes) {
  Xoshiro256 rng(4);
  const Seed256 seed = Seed256::random(rng);
  // AES: two ciphertext blocks.
  EXPECT_EQ(Aes128Keygen{}(seed).size(), 32u);
  // SABER-like: 32-byte seed_A + 2 polys * 256 coeffs * 2 bytes.
  EXPECT_EQ(SaberLikeKeygen{}(seed).size(), 32u + 2u * 256u * 2u);
  // Dilithium-like: 32-byte seed_A + 6 polys * 256 coeffs * 3 bytes.
  EXPECT_EQ(DilithiumLikeKeygen{}(seed).size(), 32u + 6u * 256u * 3u);
  // Kyber-like: 32-byte seed_A + 3 polys * 256 coeffs * 2 bytes.
  EXPECT_EQ(KyberLikeKeygen{}(seed).size(), 32u + 3u * 256u * 2u);
  // WOTS+: a single compressed 32-byte root.
  EXPECT_EQ(WotsKeygen{}(seed).size(), 32u);
}

TEST(KeygenDispatch, MatchesPolicyObjects) {
  Xoshiro256 rng(5);
  const Seed256 seed = Seed256::random(rng);
  EXPECT_EQ(generate_public_key(seed, KeygenAlgo::kAes128),
            Aes128Keygen{}(seed));
  EXPECT_EQ(generate_public_key(seed, KeygenAlgo::kSaberLike),
            SaberLikeKeygen{}(seed));
  EXPECT_EQ(generate_public_key(seed, KeygenAlgo::kDilithiumLike),
            DilithiumLikeKeygen{}(seed));
  EXPECT_EQ(generate_public_key(seed, KeygenAlgo::kKyberLike),
            KyberLikeKeygen{}(seed));
  EXPECT_EQ(generate_public_key(seed, KeygenAlgo::kWots), WotsKeygen{}(seed));
}

TEST(KeygenAlgoNames, AreStable) {
  EXPECT_EQ(to_string(KeygenAlgo::kAes128), "AES-128");
  EXPECT_EQ(to_string(KeygenAlgo::kSaberLike), "LightSABER-like");
  EXPECT_EQ(to_string(KeygenAlgo::kDilithiumLike), "Dilithium3-like");
  EXPECT_EQ(to_string(KeygenAlgo::kKyberLike), "Kyber768-like");
  EXPECT_EQ(to_string(KeygenAlgo::kWots), "WOTS+-like (SPHINCS+)");
}

TEST(WotsKeygenCost, IsAboutAThousandHashes) {
  // The property that makes WOTS the starkest legacy-vs-salted contrast:
  // one keygen costs kChains * kChainLen SHA3 calls (~1072).
  EXPECT_EQ(WotsKeygen::kChains * WotsKeygen::kChainLen, 1072);
}

TEST(SaltPolicy, RoundTrip) {
  Xoshiro256 rng(6);
  const Seed256 seed = Seed256::random(rng);
  const SaltPolicy salt(97, Seed256::random(rng));
  EXPECT_EQ(salt.invert(salt.apply(seed)), seed);
}

TEST(SaltPolicy, ChangesSeed) {
  Xoshiro256 rng(7);
  const Seed256 seed = Seed256::random(rng);
  const SaltPolicy salt;  // default rotation
  EXPECT_NE(salt.apply(seed), seed);
}

TEST(SaltPolicy, InjectiveOnSamples) {
  Xoshiro256 rng(8);
  const SaltPolicy salt(33);
  const Seed256 a = Seed256::random(rng);
  const Seed256 b = Seed256::random(rng);
  EXPECT_NE(salt.apply(a), salt.apply(b));
}

TEST(SaltPolicy, BreaksDigestKeyCorrespondence) {
  // The public key generated from the salted seed must differ from the one
  // generated from the raw seed — otherwise salting adds nothing.
  Xoshiro256 rng(9);
  const Seed256 seed = Seed256::random(rng);
  const SaltPolicy salt;
  Aes128Keygen keygen;
  EXPECT_NE(keygen(salt.apply(seed)), keygen(seed));
}

TEST(SaltPolicy, NormalizesRotationCount) {
  Xoshiro256 rng(10);
  const Seed256 seed = Seed256::random(rng);
  EXPECT_EQ(SaltPolicy(97 + 256).apply(seed), SaltPolicy(97).apply(seed));
  EXPECT_EQ(SaltPolicy(-159).apply(seed), SaltPolicy(97).apply(seed));
}

TEST(SaltPolicy, EqualityComparesConfiguration) {
  EXPECT_EQ(SaltPolicy(97), SaltPolicy(97));
  EXPECT_FALSE(SaltPolicy(97) == SaltPolicy(98));
}

}  // namespace
}  // namespace rbc::crypto
