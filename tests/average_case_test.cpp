// Empirical validation of the paper's Eq. 3: "on average, a seed will be
// searched halfway through the seed space at Hamming distance d", i.e. the
// expected number of candidates visited before finding a seed at distance
// exactly d is a(d) = u(d-1) + C(256,d)/2.
//
// Monte-Carlo over the REAL search engine with uniformly random flipped-bit
// positions. This is the statistical assumption under every "Average" row
// of Table 5, so it deserves a direct test rather than trust.
#include <gtest/gtest.h>

#include <cmath>

#include "combinatorics/chase382.hpp"
#include "combinatorics/gosper.hpp"
#include "common/rng.hpp"
#include "rbc/search.hpp"

namespace rbc {
namespace {

Seed256 random_seed_at_distance(const Seed256& base, int d, Xoshiro256& rng) {
  Seed256 s = base;
  int flipped = 0;
  while (flipped < d) {
    const int bit = static_cast<int>(rng.next_below(256));
    if ((s ^ base).bit(bit)) continue;
    s.flip_bit(bit);
    ++flipped;
  }
  return s;
}

template <typename Factory>
double mean_seeds_hashed(int d, int trials, int threads, u64 rng_seed) {
  Xoshiro256 rng(rng_seed);
  par::WorkerGroup pool(threads);
  const hash::Sha1SeedHash hash;  // cheapest hash; the count is hash-agnostic
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    const Seed256 base = Seed256::random(rng);
    const Seed256 truth = random_seed_at_distance(base, d, rng);
    Factory factory;
    SearchOptions opts;
    opts.max_distance = d;
    opts.num_threads = threads;
    const auto r =
        rbc_search<hash::Sha1SeedHash>(base, hash(truth), factory, pool, opts, hash);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.distance, d);
    total += static_cast<double>(r.seeds_hashed);
  }
  return total / trials;
}

TEST(AverageCase, DistanceOneMatchesEq3SingleThread) {
  // a(1) = 1 + 256/2 = 129. Single thread visits candidates in sequence
  // order, so the mean over uniform targets converges to a(1).
  const double mean =
      mean_seeds_hashed<comb::ChaseFactory>(1, 400, /*threads=*/1, 11);
  const double expected =
      static_cast<double>(comb::average_search_count(1));
  // Standard error of a uniform[1,257] mean over 400 trials is ~3.7.
  EXPECT_NEAR(mean, expected, 12.0);
}

TEST(AverageCase, DistanceTwoMatchesEq3SingleThread) {
  // a(2) = 257 + 32640/2 = 16577.
  const double mean =
      mean_seeds_hashed<comb::ChaseFactory>(2, 120, /*threads=*/1, 13);
  const double expected =
      static_cast<double>(comb::average_search_count(2));
  // sigma ~ 32640/sqrt(12)/sqrt(120) ~ 860.
  EXPECT_NEAR(mean, expected, 2600.0);
}

TEST(AverageCase, HoldsForGosperIteratorToo) {
  const double mean =
      mean_seeds_hashed<comb::GosperFactory>(1, 400, /*threads=*/1, 17);
  EXPECT_NEAR(mean, 129.0, 12.0);
}

TEST(AverageCase, MultiThreadedSearchDoesNotWasteWork) {
  // With p threads and per-seed flag checks, total candidates visited stays
  // close to a(d): threads each stop within one check interval of the find.
  const double mean =
      mean_seeds_hashed<comb::ChaseFactory>(2, 60, /*threads=*/4, 19);
  const double expected =
      static_cast<double>(comb::average_search_count(2));
  // Allow generous slack: scheduling skew makes multi-threaded early exit
  // visit somewhat more or fewer seeds per trial.
  EXPECT_NEAR(mean / expected, 1.0, 0.35);
}

TEST(AverageCase, ExhaustiveAlwaysVisitsEq1Count) {
  Xoshiro256 rng(23);
  par::WorkerGroup pool(2);
  const hash::Sha1SeedHash hash;
  for (int d : {1, 2}) {
    const Seed256 base = Seed256::random(rng);
    const Seed256 truth = random_seed_at_distance(base, d, rng);
    comb::ChaseFactory factory;
    SearchOptions opts;
    opts.max_distance = d;
    opts.num_threads = 2;
    opts.early_exit = false;
    const auto r = rbc_search<hash::Sha1SeedHash>(base, hash(truth), factory,
                                                  pool, opts, hash);
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.seeds_hashed,
              static_cast<u64>(comb::exhaustive_search_count(d)));
  }
}

}  // namespace
}  // namespace rbc
