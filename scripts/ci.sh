#!/usr/bin/env bash
# CI gate: build + full test suite in the default config, then rebuild with
# ThreadSanitizer and re-run the concurrency-sensitive suites. The TSan pass
# is what keeps the multi-session server honest — the stress tests exercise
# submitters -> admission queue -> drivers -> shared WorkerGroup -> RA at
# once, so any missing synchronization shows up as a race report here.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== [1/4] configure + build (default) ==="
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"

echo "=== [2/4] ctest (default) ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [3/4] configure + build (ThreadSanitizer) ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"

echo "=== [4/4] ctest (tsan: concurrency suites) ==="
# TSan slows execution ~5-15x; run the suites that exercise cross-thread
# seams rather than the whole (mostly single-threaded) matrix.
# (ctest registers gtest CASE names, so the filter matches suite prefixes.)
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
  --output-on-failure -j "$JOBS" \
  -R 'WorkerGroup|SearchContext|ServerStress|RbcSearch|Backend|Protocol|LaunchKernel|SaltedKernel|DistSearch|Communicator'

echo "CI: all gates green"
