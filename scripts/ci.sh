#!/usr/bin/env bash
# CI gate: build + full test suite in the default config, then rebuild with
# ThreadSanitizer and re-run the concurrency-sensitive suites. The TSan pass
# is what keeps the multi-session server honest — the stress tests exercise
# submitters -> admission queue -> drivers -> shared WorkerGroup -> RA at
# once, so any missing synchronization shows up as a race report here.
#
# Usage: scripts/ci.sh [jobs]
#
# Flake audit (run before cutting a release, ~10 min): repeat the full
# default-config suite 20x and fail on the first non-deterministic result —
#   ctest --test-dir build --output-on-failure -j "$(nproc)" \
#     --repeat until-fail:20
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== [1/14] configure + build (default) ==="
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"

echo "=== [2/14] ctest (default) ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [3/14] batched-hash equivalence under forced dispatch levels ==="
# The auto run above already covered the host's best level; re-run the batch
# suite with the RBC_HASH_SIMD knob capping dispatch so the scalar-tail and
# SWAR code paths are exercised even on AVX2 hosts.
for level in scalar swar; do
  echo "--- RBC_HASH_SIMD=$level ---"
  RBC_HASH_SIMD="$level" ctest --test-dir build --output-on-failure \
    -j "$JOBS" -R 'HashBatch'
done

echo "=== [4/14] schedule equivalence: tiled results == static results ==="
# The work-stealing tile scheduler (docs/scheduler.md) must be a pure
# performance change: found/seed/distance and exhaustive seeds_hashed
# identical to the static reference schedule for every iterator family, tile
# plans lossless down to the ragged last tile, and the heterogeneous
# co-search byte-identical to CPU-only. An explicit re-run so a filter edit
# elsewhere can never silently drop the gate.
ctest --test-dir build --output-on-failure -j "$JOBS" \
  -R 'ScheduleEquivalence|SeekEquivalence|HeteroCoSearch|ShellTiler|TileScheduler'

echo "=== [5/14] chaos smoke: fault injection + fuzz regression corpus ==="
# The deterministic chaos harness (docs/server.md "Fault model & retry
# policy"): fixed-seed fault plans through every layer — FaultPlan contract,
# channel fault semantics, ARQ survival/replay, and the 4-shard chaos run —
# plus the mutated-frame corpus as a deterministic parser regression. An
# explicit re-run so a filter edit elsewhere can never silently drop the
# seed-reproducibility gate.
ctest --test-dir build --output-on-failure -j "$JOBS" \
  -R 'ChaosPlan|ChaosChannel|ChaosProtocol|ChaosServer|FuzzDeserialize|FuzzSeqFrame|WireGolden'

echo "=== [6/14] bench smoke: batched hash throughput ==="
# Release-configured bench build; one quick repetition proves the batched
# kernels run at every advertised level (full numbers: docs/perf.md).
if [[ "${RBC_CI_BENCH:-1}" == "1" ]]; then
  cmake --preset release >/dev/null
  cmake --build --preset release -j "$JOBS" --target bench_hash_throughput
  ./build-release/bench/bench_hash_throughput \
    --benchmark_filter='SeedBatched|SeedFixed' --benchmark_min_time=0.05
else
  echo "(skipped: RBC_CI_BENCH=0)"
fi

echo "=== [7/14] bench smoke: server shard sweep -> BENCH_PR6.json ==="
# The sharded serving layer's acceptance run: 1/2/4/8 shards at equal total
# resources. The binary exits nonzero if sharded p95 regresses >10% against
# the single-queue baseline or any session registers a corrupt key.
if [[ "${RBC_CI_BENCH:-1}" == "1" ]]; then
  cmake --build --preset release -j "$JOBS" --target bench_server_throughput
  ./build-release/bench/bench_server_throughput --sweep-only \
    --json BENCH_PR6.json
else
  echo "(skipped: RBC_CI_BENCH=0)"
fi

echo "=== [8/14] bench smoke: chaos p95 degradation sweep ==="
# Fixed-seed chaos run at drop rates 0/2/5/10%: every session must resolve
# (submitted == rejected + completed at each point) and no lossy session may
# register a corrupt key. The binary exits nonzero otherwise.
if [[ "${RBC_CI_BENCH:-1}" == "1" ]]; then
  ./build-release/bench/bench_server_throughput --chaos-only
else
  echo "(skipped: RBC_CI_BENCH=0)"
fi

echo "=== [9/14] bench smoke: lane fusion -> BENCH_PR8.json ==="
# The fusion engine's acceptance run: the 4096-session SHA-3 d=2 burst solo
# and fused. The binary exits nonzero unless fused throughput is >= 1.3x
# solo with lane occupancy >= 0.9 and zero corrupt registrations.
if [[ "${RBC_CI_BENCH:-1}" == "1" ]]; then
  ./build-release/bench/bench_server_throughput --fusion-only \
    --json BENCH_PR8.json
else
  echo "(skipped: RBC_CI_BENCH=0)"
fi

echo "=== [10/14] bench smoke: reliability-ordered search -> BENCH_PR9.json ==="
# The reliability-guided ordering acceptance run: a 192-session injected-d=3
# burst replayed under canonical and maximum-likelihood-first order. The
# binary exits nonzero unless the ordered run hashes >= 5x fewer seeds per
# authenticated session and serves >= 1.5x the sessions/s with per-session
# verdicts identical and zero corrupt registrations.
if [[ "${RBC_CI_BENCH:-1}" == "1" ]]; then
  ./build-release/bench/bench_server_throughput --ordering-only \
    --json BENCH_PR9.json
else
  echo "(skipped: RBC_CI_BENCH=0)"
fi

echo "=== [11/14] bench smoke: observability -> BENCH_PR10.json + metrics export ==="
# The observability layer's acceptance run: the dispatch-overhead burst
# untraced vs traced (span tracer + flight recorder armed). The binary exits
# nonzero unless traced p95 stays within the 5% overhead gate with zero
# corruptions; the exported rbc.metrics.v1 JSON document and its Prometheus
# sidecar are then validated structurally (and cross-checked against each
# other) by scripts/check_metrics.py.
if [[ "${RBC_CI_BENCH:-1}" == "1" ]]; then
  ./build-release/bench/bench_server_throughput --obs-only \
    --obs-sessions 1024 --json BENCH_PR10.json \
    --metrics-out build-release/metrics.json
  if command -v python3 >/dev/null 2>&1; then
    python3 scripts/check_metrics.py build-release/metrics.json
  else
    echo "(metrics validation skipped: python3 not available)"
  fi
else
  echo "(skipped: RBC_CI_BENCH=0)"
fi

echo "=== [12/14] bench trajectory: merge archived BENCH_*.json ==="
# One table across every archived acceptance run; exits nonzero if any
# archived acceptance_* gate reads false (stale or regressed archive).
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_trend.py
else
  echo "(skipped: python3 not available)"
fi

echo "=== [13/14] configure + build (ThreadSanitizer) ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"

echo "=== [14/14] ctest (tsan: concurrency suites) ==="
# TSan slows execution ~5-15x; run the suites that exercise cross-thread
# seams rather than the whole (mostly single-threaded) matrix. ShardStress
# runs the sharded server (shards > 1) through concurrent submit/stats/
# shutdown; ChaosServer does the same over lossy channels with per-session
# fault forks; EnrollmentDatabaseConcurrency hammers the striped store;
# FusionEngine/FusionServer drive the fused batch pump from many drivers;
# OrderedSearch/OrderedFusion/OrderedServer run the reliability-ordered
# stream through multi-threaded solo scans, mixed-order fused batches and
# a full server burst; ShellCacheLru hammers the shared shell-mask cache;
# Obs* covers the lock-free trace ring under concurrent writers/snapshots,
# mid-traffic metrics export, and the shell-cache counter churn case.
# (ctest registers gtest CASE names, so the filter matches suite prefixes.)
TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
  --output-on-failure -j "$JOBS" \
  -R 'WorkerGroup|SearchContext|ServerStress|ShardStress|ChaosProtocol|ChaosServer|EnrollmentDatabaseConcurrency|RbcSearch|Backend|Protocol|LaunchKernel|SaltedKernel|DistSearch|Communicator|HashBatch|TileScheduler|TileSchedulerStress|ScheduleEquivalence|HeteroCoSearch|SeekEquivalence|ShellTiler|FusionStream|FusionBatch|FusionEngine|FusionServer|OrderedSearch|OrderedFusion|OrderedServer|ShellCacheLru|Obs'

echo "CI: all gates green"
