#!/usr/bin/env sh
# Reproduce everything: build, run the full test suite, regenerate every
# table/figure, and run the examples. Outputs land in test_output.txt and
# bench_output.txt at the repository root (the files EXPERIMENTS.md cites).
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Examples:"
for e in quickstart iot_fleet_authentication accelerator_comparison \
         puf_error_study security_tuning protocol_walkthrough \
         distributed_search rbc_ca_tool; do
  echo "--- $e ---"
  "build/examples/$e" > /dev/null && echo "ok"
done
