#!/usr/bin/env python3
"""Validate an rbc.metrics.v1 metrics export (JSON + Prometheus sidecar).

The serving layer exports one snapshot in two wire formats (see
src/obs/metrics.hpp): a flat JSON document and Prometheus text exposition.
This validator is the CI gate on both:

  * JSON: schema tag is "rbc.metrics.v1", "metrics" is a flat object of
    numeric series, and every REQUIRED_SERIES key is present.
  * Prometheus (<json-path>.prom by default): every sample line parses, every
    family is preceded by matching # HELP and # TYPE lines, and the declared
    type is counter or gauge.
  * Cross-check: every unlabeled series must carry the SAME value in both
    formats — the two renderings come from one snapshot, so any divergence
    is a renderer bug, not jitter.

Usage: scripts/check_metrics.py <metrics.json> [metrics.prom]

Exits nonzero (with a reason per line) on the first structural failure
class. Stdlib only — no third-party imports.
"""

import json
import math
import re
import sys

SCHEMA = "rbc.metrics.v1"

# The serving-path series the exporter always emits (labels stripped).
REQUIRED_SERIES = [
    "rbc_sessions_submitted_total",
    "rbc_sessions_rejected_total",
    "rbc_sessions_completed_total",
    "rbc_sessions_authenticated_total",
    "rbc_sessions_timed_out_total",
    "rbc_sessions_transport_failed_total",
    "rbc_link_retransmits_total",
    "rbc_link_frames_dropped_total",
    "rbc_trace_events_recorded_total",
    "rbc_flight_records_total",
    "rbc_shards",
    "rbc_queue_depth",
    "rbc_in_flight",
    "rbc_session_time_seconds_mean",
    "rbc_session_time_seconds_p50",
    "rbc_session_time_seconds_p95",
]

# metric_name{optional="labels"} value
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? "
    r"(?P<value>-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|inf|nan))$"
)
HELP_LINE = re.compile(r"^# HELP (?P<name>\S+) .+$")
TYPE_LINE = re.compile(r"^# TYPE (?P<name>\S+) (?P<type>counter|gauge)$")


def fail(errors):
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    return 1


def check_json(path):
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)  # a parse error is its own loud failure
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{path}: 'metrics' must be a non-empty object")
        return {}, errors
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{path}: series {key!r} is not numeric: {value!r}")
        elif isinstance(value, float) and not math.isfinite(value):
            errors.append(f"{path}: series {key!r} is not finite: {value!r}")
    names = {key.split("{", 1)[0] for key in metrics}
    for required in REQUIRED_SERIES:
        if required not in names:
            errors.append(f"{path}: required series {required!r} missing")
    return metrics, errors


def check_prometheus(path):
    errors = []
    samples = {}
    helped, typed = set(), set()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            m = HELP_LINE.match(line)
            if m:
                helped.add(m.group("name"))
                continue
            m = TYPE_LINE.match(line)
            if m:
                typed.add(m.group("name"))
                continue
            if line.startswith("#"):
                errors.append(f"{path}:{lineno}: unparseable comment: {line}")
                continue
            m = SAMPLE_LINE.match(line)
            if m is None:
                errors.append(f"{path}:{lineno}: unparseable sample: {line}")
                continue
            name = m.group("name")
            if name not in helped:
                errors.append(f"{path}:{lineno}: {name} has no # HELP line")
            if name not in typed:
                errors.append(f"{path}:{lineno}: {name} has no # TYPE line")
            samples[name + (m.group("labels") or "")] = float(m.group("value"))
    if not samples:
        errors.append(f"{path}: no samples found")
    return samples, errors


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    json_path = sys.argv[1]
    prom_path = sys.argv[2] if len(sys.argv) == 3 else json_path + ".prom"

    json_metrics, errors = check_json(json_path)
    prom_samples, prom_errors = check_prometheus(prom_path)
    errors.extend(prom_errors)
    if errors:
        return fail(errors)

    # Cross-check: one snapshot, two renderings. The JSON flattens labels
    # into the key exactly as Prometheus prints them, so keys are comparable
    # verbatim (JSON escapes the quotes, which json.load already undid).
    mismatches = []
    for key, value in json_metrics.items():
        if key not in prom_samples:
            mismatches.append(f"series {key!r} in JSON but not in Prometheus")
        elif not math.isclose(prom_samples[key], float(value), rel_tol=1e-9,
                              abs_tol=1e-12):
            mismatches.append(
                f"series {key!r}: JSON {value} != Prometheus {prom_samples[key]}")
    for key in prom_samples:
        if key not in json_metrics:
            mismatches.append(f"series {key!r} in Prometheus but not in JSON")
    if mismatches:
        return fail(mismatches)

    print(f"OK: {json_path} + {prom_path}: "
          f"{len(json_metrics)} series, formats agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
