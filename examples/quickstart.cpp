// Quickstart: enroll one IoT device, authenticate it once, inspect results.
//
// Walks the full RBC-SALTED flow of Fig. 1 on the public API:
//   1. manufacture a (simulated) SRAM PUF device,
//   2. enroll it with the CA (encrypted image + TAPKI calibration),
//   3. run an authentication session over the simulated channel,
//   4. show the recovered distance, timings, and the registered key.
#include <cstdio>

#include "rbc/protocol.hpp"

int main() {
  using namespace rbc;

  // --- 1. Manufacture the client device -------------------------------------
  puf::SramPufModel::Params puf_params;
  puf_params.num_addresses = 16;
  puf::SramPufModel device(puf_params, /*device_serial=*/20260707);

  // --- 2. Enrollment at the secure facility ---------------------------------
  constexpr u64 kDeviceId = 1;
  EnrollmentDatabase db(crypto::Aes128::Key{0x5a});  // CA master key
  Xoshiro256 enrollment_rng(1);
  db.enroll(kDeviceId, device, /*calibration_reads=*/100,
            /*max_flip_rate=*/0.05, enrollment_rng);

  // --- 3. Stand up CA + RA with a GPU-simulated search backend --------------
  RegistrationAuthority ra;
  CaConfig ca_cfg;
  ca_cfg.max_distance = 3;        // search the d <= 3 Hamming ball
  ca_cfg.time_threshold_s = 20.0; // the paper's T
  CertificateAuthority ca(ca_cfg, std::move(db), make_backend("gpu"), &ra);

  // --- 4. Configure the client and authenticate -----------------------------
  ClientConfig client_cfg;
  client_cfg.device_id = kDeviceId;
  client_cfg.hash_algo = hash::HashAlgo::kSha3_256;
  client_cfg.keygen_algo = crypto::KeygenAlgo::kDilithiumLike;
  client_cfg.injected_distance = 3;  // §4.1 noise-injection policy
  Client client(client_cfg, &device, /*rng_seed=*/42);

  const SessionReport session = run_authentication(client, ca, ra);

  std::printf("authenticated: %s\n",
              session.result.authenticated ? "yes" : "no");
  std::printf("seed recovered at Hamming distance: %d\n",
              session.result.found_distance);
  std::printf("seeds hashed by the server: %llu\n",
              static_cast<unsigned long long>(session.engine.result.seeds_hashed));
  std::printf("host search time: %.4f s   (modeled on %s: %.3e s)\n",
              session.result.search_seconds,
              session.engine.device_name.c_str(),
              session.engine.modeled_device_seconds);
  std::printf("communication budget: %.2f s, total: %.2f s\n",
              session.comm_time_s, session.total_time_s);

  // The RA now holds the session public key; the client derives the same key
  // from its own seed + the shared salt (key agreement).
  const Bytes client_key = client.derive_public_key(ca.config().salt);
  const bool agree = session.registered_public_key == client_key;
  std::printf("public key registered with RA: %zu bytes, %s\n",
              session.registered_public_key.size(),
              agree ? "matches the client's derivation"
                    : "MISMATCH (bug!)");
  return agree && session.result.authenticated ? 0 : 1;
}
