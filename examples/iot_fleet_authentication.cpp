// IoT fleet authentication — the workload the paper's introduction
// motivates: a CA server authenticating a fleet of low-powered devices whose
// PUFs have heterogeneous quality.
//
// Enrolls a fleet of devices with varying erratic-cell fractions, runs
// several authentication rounds per device, and reports fleet-wide
// statistics: authentication rate, search effort, and how TAPKI masking
// keeps poor devices usable.
#include <cstdio>
#include <vector>

#include "rbc/protocol.hpp"
#include "rbc/trial.hpp"

int main() {
  using namespace rbc;

  constexpr int kDevices = 12;
  constexpr int kRoundsPerDevice = 5;

  // Device quality tiers: erratic-cell fraction ramps up across the fleet.
  auto params_for = [](int i) {
    puf::SramPufModel::Params p;
    p.num_addresses = 8;
    p.erratic_cell_fraction = 0.02 + 0.01 * i;  // 2% .. 13%
    p.stable_flip_probability = 0.004;
    p.erratic_flip_probability = 0.30;
    return p;
  };

  // One CA serves the whole fleet.
  EnrollmentDatabase db(crypto::Aes128::Key{0x77});
  std::vector<puf::SramPufModel> devices;
  devices.reserve(kDevices);
  Xoshiro256 enrollment_rng(7);
  for (int i = 0; i < kDevices; ++i) {
    devices.emplace_back(params_for(i), static_cast<u64>(1000 + i));
    db.enroll(static_cast<u64>(i), devices.back(), /*calibration_reads=*/120,
              /*max_flip_rate=*/0.05, enrollment_rng);
  }

  RegistrationAuthority ra;
  CaConfig ca_cfg;
  ca_cfg.max_distance = 3;
  CertificateAuthority ca(ca_cfg, std::move(db), make_backend("gpu"), &ra);

  std::printf("%-8s %-10s %-10s %-12s %-14s %-16s %-12s\n", "device",
              "erratic%", "masked", "auth rate", "mean seeds",
              "mean GPU-model s", "p95 host s");
  int fleet_auth = 0, fleet_total = 0;
  for (int i = 0; i < kDevices; ++i) {
    ClientConfig cfg;
    cfg.device_id = static_cast<u64>(i);
    cfg.injected_distance = -1;  // submit the real (masked) noisy reading
    Client client(cfg, &devices[static_cast<unsigned>(i)],
                  static_cast<u64>(5000 + i));
    const TrialStats stats = run_trials(client, ca, ra, kRoundsPerDevice);
    fleet_auth += stats.authenticated;
    fleet_total += stats.trials;

    // Peek at one TAPKI mask for reporting.
    const auto record = ca.database().load(static_cast<u64>(i));
    std::printf("%-8d %-10.1f %-10d %-12.2f %-14.1f %-16.3e %-12.4f\n", i,
                100.0 * params_for(i).erratic_cell_fraction,
                record.masks[0].num_unstable(), stats.auth_rate(),
                stats.mean_seeds_hashed(), stats.mean_modeled_device_s(),
                stats.host_search_percentile(0.95));
  }

  std::printf("\nfleet: %d/%d sessions authenticated (%.1f%%), %zu keys in "
              "the RA registry\n",
              fleet_auth, fleet_total, 100.0 * fleet_auth / fleet_total,
              ra.size());
  std::printf("TAPKI masks scale with device quality, keeping the masked bit\n"
              "streams within the d <= %d search budget even for the noisy "
              "tail of the fleet.\n",
              ca.config().max_distance);
  return fleet_auth == fleet_total ? 0 : 1;
}
