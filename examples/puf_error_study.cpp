// PUF error study — how the bit error rate drives search effort and
// authentication success (the feasibility question of Cambou et al. [12,15]
// that motivates accelerating the search at all).
//
// Sweeps the client's injected Hamming distance from 0 to 5 and reports, for
// a fixed CA search budget: authentication rate, mean seeds hashed, host
// search time, and modeled GPU time — showing the exponential wall the
// server hits as PUF quality degrades, and how raising the budget d moves
// the wall (at the cost of Table 1's search-space growth).
#include <cstdio>

#include "combinatorics/binomial.hpp"
#include "rbc/protocol.hpp"
#include "rbc/trial.hpp"

int main() {
  using namespace rbc;

  puf::SramPufModel::Params params;
  params.num_addresses = 4;
  puf::SramPufModel device(params, 555);

  constexpr int kTrials = 8;
  constexpr int kBudget = 3;  // CA searches d <= 3 (host-scale stand-in for 5)

  std::printf("CA search budget: d <= %d, T = 20 s, backend: simulated A100\n",
              kBudget);
  std::printf("%-10s %-11s %-13s %-13s %-15s %-12s\n", "injected d",
              "auth rate", "mean seeds", "host mean s", "GPU model s",
              "ball u(d)");

  for (int injected = 0; injected <= 5; ++injected) {
    EnrollmentDatabase db(crypto::Aes128::Key{0x0f});
    Xoshiro256 rng(17);
    db.enroll(1, device, 80, 0.05, rng);
    RegistrationAuthority ra;
    CaConfig cfg;
    cfg.max_distance = kBudget;
    CertificateAuthority ca(cfg, std::move(db), make_backend("gpu"), &ra);

    ClientConfig ccfg;
    ccfg.device_id = 1;
    ccfg.injected_distance = injected;
    Client client(ccfg, &device, static_cast<u64>(100 + injected));

    const TrialStats stats = run_trials(client, ca, ra, kTrials);
    std::printf("%-10d %-11.2f %-13.0f %-13.4f %-15.3e %-12s\n", injected,
                stats.auth_rate(), stats.mean_seeds_hashed(),
                stats.mean_host_search_s(), stats.mean_modeled_device_s(),
                injected > 0
                    ? comb::u128_to_string(
                          comb::exhaustive_search_count(injected))
                          .c_str()
                    : "1");
  }

  std::printf(
      "\nReading the table: beyond the CA's d <= %d budget the auth rate\n"
      "drops to zero and the server burns the full ball before giving up —\n"
      "the client restarts with a new PUF address (Fig. 1 timeout path).\n"
      "The paper's answer is throughput: a platform that searches u(5) =\n"
      "9.0e9 seeds inside T lets the CA raise the budget and even inject\n"
      "extra noise for security (§5).\n",
      kBudget);
  return 0;
}
