// Distributed search — the Philabaum et al. [36] deployment shape and the
// §5 "scale the multi-core CPU algorithm across multiple compute nodes"
// future-work direction, demonstrated functionally on the message-passing
// substrate: rank 0 grants guided chunks of each shell on request (no
// per-shell barriers), and the early-exit notification travels as real
// STOP messages.
#include <cstdio>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dist/dist_search.hpp"
#include "sim/cluster_model.hpp"

int main() {
  using namespace rbc;

  Xoshiro256 rng(2026);
  const Seed256 enrolled = Seed256::random(rng);
  Seed256 client_seed = enrolled;
  client_seed.flip_bit(45);
  client_seed.flip_bit(217);  // a client at Hamming distance 2

  const hash::Sha3SeedHash hash;
  const auto target = hash(client_seed);

  std::printf("Distributed RBC search (rank-0 coordinator, STOP broadcast)\n");
  std::printf("%-8s %-10s %-10s %-14s %-14s %-12s\n", "ranks", "found",
              "distance", "finder rank", "seeds hashed", "host time s");
  for (int ranks : {1, 2, 4, 8}) {
    dist::Communicator comm(ranks);
    WallTimer timer;
    SearchOptions opts;
    opts.max_distance = 2;
    const auto r = dist::distributed_search<hash::Sha3SeedHash>(
        comm, enrolled, target, opts);
    std::printf("%-8d %-10s %-10d %-14d %-14llu %-12.4f\n", ranks,
                r.found ? "yes" : "NO", r.distance, r.finder_rank,
                static_cast<unsigned long long>(r.seeds_hashed),
                timer.elapsed_s());
    if (!r.found || r.seed != client_seed) return 1;
  }

  // Pair the functional demonstration with the calibrated cluster model at
  // paper scale: what the same topology does to the d = 5 SHA-3 search.
  std::printf("\nPaper-scale projection (SHA-3 exhaustive d = 5, EPYC nodes):\n");
  sim::ClusterModel cluster;
  std::printf("%-8s %-10s %-14s %-10s\n", "nodes", "cores", "search s",
              "fits T=20s");
  for (int nodes : {1, 2, 4, 8}) {
    const double t =
        cluster.exhaustive_time_s(5, hash::HashAlgo::kSha3_256, nodes);
    std::printf("%-8d %-10d %-14.2f %-10s\n", nodes, cluster.cores(nodes), t,
                t + 0.9 <= 20.0 ? "yes" : "no");
  }
  std::printf("\nCalibration cross-check: the model reproduces [36]'s 404x "
              "speedup on 512 cores (%.0fx).\n",
              cluster.philabaum_speedup());
  return 0;
}
