// Protocol walkthrough — a verbose, annotated trace of one authentication,
// mapping every step to Fig. 1 of the paper. Useful as executable
// documentation: run it and read the transcript next to the figure.
#include <cstdio>

#include "common/hex.hpp"
#include "rbc/protocol.hpp"

int main() {
  using namespace rbc;

  std::printf("RBC-SALTED protocol walkthrough (Fig. 1)\n");
  std::printf("========================================\n\n");

  // Enrollment (secure facility, before deployment).
  puf::SramPufModel::Params params;
  params.num_addresses = 4;
  puf::SramPufModel device(params, 0xD01);
  EnrollmentDatabase db(crypto::Aes128::Key{0xAA});
  Xoshiro256 rng(1);
  db.enroll(42, device, 100, 0.05, rng);
  std::printf("[enroll]   device 42 imaged at %u addresses; record stored\n"
              "           AES-CTR encrypted (%zu bytes at rest)\n\n",
              device.num_addresses(), db.ciphertext(42).size());

  RegistrationAuthority ra;
  CaConfig ca_cfg;
  ca_cfg.max_distance = 3;
  CertificateAuthority ca(ca_cfg, std::move(db), make_backend("gpu"), &ra);

  ClientConfig ccfg;
  ccfg.device_id = 42;
  ccfg.injected_distance = 2;
  Client client(ccfg, &device, 0xC1);

  // Step 0-1: handshake.
  net::HandshakeRequest handshake;
  handshake.device_id = 42;
  handshake.hash_algo = ccfg.hash_algo;
  handshake.keygen_algo = ccfg.keygen_algo;
  std::printf("[client->CA] HandshakeRequest{device=42, hash=%s, keygen=%s}\n",
              std::string(hash::to_string(handshake.hash_algo)).c_str(),
              std::string(crypto::to_string(handshake.keygen_algo)).c_str());

  // Step 2: challenge with PUF address + TAPKI helper mask.
  const net::Challenge challenge = ca.issue_challenge(handshake);
  std::printf("[CA->client] Challenge{address=%u, tapki=%s, %d unstable "
              "cells masked}\n",
              challenge.puf_address, challenge.tapki_enabled ? "on" : "off",
              256 - challenge.stable_mask.popcount());

  // Step 3: client reads the PUF, masks, hashes -> M1.
  const net::DigestSubmission submission = client.respond(challenge);
  std::printf("[client]     reads PUF at %u, masks unstable cells, injects "
              "noise to d=%d\n",
              challenge.puf_address, ccfg.injected_distance);
  std::printf("[client->CA] DigestSubmission{M1=%s...}\n",
              to_hex(ByteSpan{submission.digest.data(), 8}).c_str());

  // Steps 4-9: RBC search on the CA, salt, keygen, RA update.
  EngineReport engine;
  const net::AuthResult result =
      ca.process_digest(handshake, challenge, submission, &engine);
  std::printf("[CA]         RBC search over Hamming shells: hashed %llu "
              "candidates, found at d=%d\n",
              static_cast<unsigned long long>(engine.result.seeds_hashed),
              result.found_distance);
  std::printf("[CA]         host search %.4f s; %s model projects %.3e s\n",
              engine.result.host_seconds, engine.device_name.c_str(),
              engine.modeled_device_seconds);
  std::printf("[CA]         salts recovered seed, generates %s public key "
              "ONCE, updates RA\n",
              std::string(crypto::to_string(handshake.keygen_algo)).c_str());
  std::printf("[CA->client] AuthResult{authenticated=%s}\n\n",
              result.authenticated ? "true" : "false");

  // Key agreement check.
  const std::optional<Bytes> registered = ra.lookup(42);
  const Bytes derived = client.derive_public_key(ca.config().salt);
  std::printf("[RA]         session key registered: %zu bytes, rotation %llu, "
              "expires at t=%.0f s\n",
              registered ? registered->size() : 0,
              static_cast<unsigned long long>(ra.entry(42)->rotation),
              ra.entry(42)->expires_at);
  std::printf("[check]      client-side derivation matches RA entry: %s\n",
              (registered && *registered == derived) ? "yes" : "NO");

  // One-time key property: expire and re-authenticate.
  ra.advance_time(ra.key_ttl() + 1.0);
  std::printf("[clock]      +%.0f s -> key expired, lookup now %s\n",
              ra.key_ttl() + 1.0,
              ra.lookup(42) ? "still valid?!" : "empty");
  const auto session2 = run_authentication(client, ca, ra);
  std::printf("[re-auth]    new session: authenticated=%s, key rotation=%llu, "
              "key differs from old: %s\n",
              session2.result.authenticated ? "yes" : "no",
              static_cast<unsigned long long>(ra.entry(42)->rotation),
              session2.registered_public_key != derived ? "yes" : "no");
  return result.authenticated ? 0 : 1;
}
