// rbc_ca_tool — a small operational CLI for a SALTED certificate authority.
//
// Demonstrates the persistence + protocol workflow a deployment would
// script:
//
//   rbc_ca_tool enroll <db-file> <device-id> [num-addresses]
//       Manufacture the (simulated) device, calibrate TAPKI masks, and
//       append the encrypted record to the database file.
//
//   rbc_ca_tool authenticate <db-file> <device-id> [injected-d] [backend]
//       Load the database, stand up a CA on the chosen backend and run one
//       full authentication session for the device.
//
//   rbc_ca_tool inspect <db-file>
//       Summarize the database (device count, record sizes, mask weights).
//
// The device's physical identity is derived deterministically from its id,
// so "the same device" is available to both subcommands without extra
// state — the stand-in for plugging in the physical PUF.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "rbc/protocol.hpp"

namespace {

using namespace rbc;

crypto::Aes128::Key master_key() {
  // A deployment would load this from an HSM; the tool derives it from a
  // fixed demo passphrase via SHA3.
  const char* passphrase = "rbc-ca-tool demo master key";
  const auto digest = hash::sha3_256(
      ByteSpan{reinterpret_cast<const u8*>(passphrase), strlen(passphrase)});
  crypto::Aes128::Key key{};
  std::copy_n(digest.bytes.begin(), key.size(), key.begin());
  return key;
}

puf::SramPufModel make_device(u64 device_id, u32 addresses) {
  puf::SramPufModel::Params params;
  params.num_addresses = addresses;
  return puf::SramPufModel(params, device_id ^ 0xCA11AB1EULL);
}

EnrollmentDatabase open_or_create(const std::string& path) {
  if (std::filesystem::exists(path)) {
    return EnrollmentDatabase::load_from_file(path, master_key());
  }
  return EnrollmentDatabase(master_key());
}

int cmd_enroll(const std::string& db_path, u64 device_id, u32 addresses) {
  EnrollmentDatabase db = open_or_create(db_path);
  if (db.contains(device_id)) {
    std::fprintf(stderr, "device %llu already enrolled\n",
                 static_cast<unsigned long long>(device_id));
    return 1;
  }
  const auto device = make_device(device_id, addresses);
  Xoshiro256 rng(device_id ^ 0xE201);
  db.enroll(device_id, device, /*calibration_reads=*/120,
            /*max_flip_rate=*/0.05, rng);
  db.save(db_path);
  std::printf("enrolled device %llu (%u addresses); database now holds %zu "
              "records at %s\n",
              static_cast<unsigned long long>(device_id), addresses, db.size(),
              db_path.c_str());
  return 0;
}

int cmd_authenticate(const std::string& db_path, u64 device_id, int injected,
                     const std::string& backend) {
  if (!std::filesystem::exists(db_path)) {
    std::fprintf(stderr, "no database at %s (enroll first)\n", db_path.c_str());
    return 1;
  }
  EnrollmentDatabase db =
      EnrollmentDatabase::load_from_file(db_path, master_key());
  if (!db.contains(device_id)) {
    std::fprintf(stderr, "device %llu is not enrolled\n",
                 static_cast<unsigned long long>(device_id));
    return 1;
  }
  const u32 addresses = db.load(device_id).image.num_addresses();
  const auto device = make_device(device_id, addresses);

  RegistrationAuthority ra;
  CaConfig cfg;
  cfg.max_distance = 3;
  CertificateAuthority ca(cfg, std::move(db), make_backend(backend), &ra);

  ClientConfig ccfg;
  ccfg.device_id = device_id;
  ccfg.injected_distance = injected;
  Client client(ccfg, &device,
                device_id ^ static_cast<u64>(std::time(nullptr)));

  const SessionReport session = run_authentication(client, ca, ra);
  std::printf("device %llu via %s: %s (found d=%d, %llu seeds, host %.3f s, "
              "%s model %.3e s, total %.2f s)\n",
              static_cast<unsigned long long>(device_id), backend.c_str(),
              session.result.authenticated ? "AUTHENTICATED" : "REJECTED",
              session.result.found_distance,
              static_cast<unsigned long long>(
                  session.engine.result.seeds_hashed),
              session.result.search_seconds,
              session.engine.device_name.c_str(),
              session.engine.modeled_device_seconds, session.total_time_s);
  if (session.result.authenticated) {
    std::printf("session key: %zu bytes, registered with RA (rotation %llu)\n",
                session.registered_public_key.size(),
                static_cast<unsigned long long>(
                    ra.entry(device_id)->rotation));
  }
  return session.result.authenticated ? 0 : 2;
}

int cmd_inspect(const std::string& db_path) {
  if (!std::filesystem::exists(db_path)) {
    std::fprintf(stderr, "no database at %s\n", db_path.c_str());
    return 1;
  }
  const EnrollmentDatabase db =
      EnrollmentDatabase::load_from_file(db_path, master_key());
  std::printf("database %s: %zu device(s)\n", db_path.c_str(), db.size());
  // Device ids are not enumerable through the public API by design (the
  // at-rest file leaks only framing); probe the demo id range.
  for (u64 id = 0; id < 64; ++id) {
    if (!db.contains(id)) continue;
    const auto record = db.load(id);
    int masked = 0;
    for (const auto& mask : record.masks) masked += mask.num_unstable();
    std::printf("  device %3llu: %u addresses, ciphertext %zu bytes, "
                "%d unstable cells masked in total\n",
                static_cast<unsigned long long>(id),
                record.image.num_addresses(), db.ciphertext(id).size(),
                masked);
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rbc_ca_tool enroll <db-file> <device-id> [addresses=8]\n"
               "  rbc_ca_tool authenticate <db-file> <device-id> "
               "[injected-d=2] [backend=gpu]\n"
               "  rbc_ca_tool inspect <db-file>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // No arguments: self-demonstration on a temp database.
    const std::string path =
        (std::filesystem::temp_directory_path() / "rbc_ca_demo.db").string();
    std::remove(path.c_str());
    std::printf("(no arguments — running the self-demo on %s)\n\n",
                path.c_str());
    if (cmd_enroll(path, 1, 8) != 0) return 1;
    if (cmd_enroll(path, 2, 4) != 0) return 1;
    if (cmd_inspect(path) != 0) return 1;
    if (cmd_authenticate(path, 1, 2, "gpu") != 0) return 1;
    if (cmd_authenticate(path, 2, 1, "apu") != 0) return 1;
    std::remove(path.c_str());
    return 0;
  }

  const std::string cmd = argv[1];
  if (cmd == "enroll" && argc >= 4) {
    const u32 addresses =
        argc >= 5 ? static_cast<u32>(std::strtoul(argv[4], nullptr, 10)) : 8;
    return cmd_enroll(argv[2], std::strtoull(argv[3], nullptr, 10), addresses);
  }
  if (cmd == "authenticate" && argc >= 4) {
    const int injected = argc >= 5 ? std::atoi(argv[4]) : 2;
    const std::string backend = argc >= 6 ? argv[5] : "gpu";
    return cmd_authenticate(argv[2], std::strtoull(argv[3], nullptr, 10),
                            injected, backend);
  }
  if (cmd == "inspect" && argc >= 3) return cmd_inspect(argv[2]);
  usage();
  return 1;
}
