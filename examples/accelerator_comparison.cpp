// Accelerator comparison — §4.6 in miniature, on the public API.
//
// Runs the SAME authentication workload against the three search backends
// (simulated A100 GPU, simulated Gemini APU, EPYC-class CPU), for SHA-1 and
// SHA-3, and prints the projected device times plus the paper-scale d = 5
// projections and energy footprints. A decision-support tool for choosing a
// server platform for an RBC deployment.
#include <cstdio>

#include "rbc/protocol.hpp"
#include "sim/apu_model.hpp"
#include "sim/cpu_model.hpp"
#include "sim/energy.hpp"
#include "sim/gpu_model.hpp"

int main() {
  using namespace rbc;
  using hash::HashAlgo;

  puf::SramPufModel::Params params;
  params.num_addresses = 4;
  puf::SramPufModel device(params, 90210);

  std::printf("Workload: authenticate one client with 3 flipped bits "
              "(searches the d<=3 ball)\n\n");
  std::printf("%-12s %-7s %-7s %-9s %-13s %-18s\n", "backend", "hash",
              "auth", "found d", "host time s", "modeled device s");

  for (const char* backend : {"gpu", "apu", "cpu"}) {
    for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
      EnrollmentDatabase db(crypto::Aes128::Key{0x01});
      Xoshiro256 rng(11);
      db.enroll(1, device, 80, 0.05, rng);
      RegistrationAuthority ra;
      CaConfig cfg;
      cfg.max_distance = 3;
      CertificateAuthority ca(cfg, std::move(db), make_backend(backend), &ra);

      ClientConfig ccfg;
      ccfg.device_id = 1;
      ccfg.hash_algo = h;
      ccfg.injected_distance = 3;
      Client client(ccfg, &device, 13);

      const auto session = run_authentication(client, ca, ra);
      std::printf("%-12s %-7s %-7s %-9d %-13.4f %-18.3e\n",
                  session.engine.device_name.c_str(),
                  std::string(hash::to_string(h)).c_str(),
                  session.result.authenticated ? "yes" : "NO",
                  session.result.found_distance,
                  session.result.search_seconds,
                  session.engine.modeled_device_seconds);
    }
  }

  // Paper-scale projection: what would a d = 5 deployment look like?
  std::printf("\nPaper-scale projection (exhaustive d = 5 search):\n");
  sim::GpuModel gpu;
  sim::ApuModel apu;
  sim::CpuModel cpu;
  sim::EnergyModel energy;
  std::printf("%-12s %-7s %-12s %-12s\n", "platform", "hash", "search s",
              "energy J");
  for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
    const double tg = gpu.exhaustive_time_s(5, h);
    const double ta = apu.exhaustive_time_s(5, h);
    const double tc = cpu.exhaustive_time_s(5, h, 64);
    std::printf("%-12s %-7s %-12.2f %-12.1f\n", "A100 GPU",
                std::string(hash::to_string(h)).c_str(), tg,
                energy.gpu_energy(sim::a100(), h, tg).total_joules);
    std::printf("%-12s %-7s %-12.2f %-12.1f\n", "Gemini APU",
                std::string(hash::to_string(h)).c_str(), ta,
                energy.apu_energy(sim::gemini_apu(), h, ta).total_joules);
    std::printf("%-12s %-7s %-12.2f %-12s\n", "EPYC x64",
                std::string(hash::to_string(h)).c_str(), tc, "-");
  }
  std::printf(
      "\nTakeaway (paper §5): GPU ~ APU on SHA-1 with the APU ~2.5x more\n"
      "energy-efficient; on SHA-3 the GPU is ~3x faster and energy parity\n"
      "returns. The CPU needs SHA-1 to stay inside the T = 20 s threshold.\n");
  return 0;
}
