// Security tuning — the §5 extension made operational: given a platform and
// the T = 20 s authentication threshold, pick the largest Hamming distance
// whose WORST-CASE search still fits, then inject that much noise into the
// client's PUF output on purpose. More injected noise = a larger space any
// observer must reason about per one-time key, with zero risk of timeouts.
//
// Demonstrates the planner across platforms, then runs a real (host-scale)
// session at the planned setting to show nothing times out.
#include <cstdio>

#include "rbc/protocol.hpp"
#include "sim/cluster_model.hpp"
#include "sim/security_planner.hpp"

int main() {
  using namespace rbc;
  using hash::HashAlgo;

  const double T = 20.0;
  const double comm = 0.90;

  std::printf("Planning injected noise for T = %.0f s (comm budget %.2f s)\n\n",
              T, comm);
  std::printf("%-22s %-7s %-8s %-16s %-14s %-10s\n", "platform", "hash",
              "max d", "worst search s", "search space", "headroom");

  auto report = [&](const char* name, HashAlgo h,
                    const std::function<double(int)>& time_fn) {
    const auto plan = sim::plan_injected_noise(time_fn, T, comm, 8);
    std::printf("%-22s %-7s %-8d %-16.2f %-14s +%.1f bits\n", name,
                std::string(hash::to_string(h)).c_str(), plan.max_distance,
                plan.exhaustive_time_s,
                comb::u128_to_string(plan.search_space).c_str(),
                plan.headroom_bits);
  };

  sim::GpuModel gpu;
  sim::ApuModel apu;
  sim::CpuModel cpu;
  sim::MultiGpuModel multi;
  sim::ClusterModel cluster;
  for (HashAlgo h : {HashAlgo::kSha1, HashAlgo::kSha3_256}) {
    report("A100 GPU", h, [&](int d) { return gpu.exhaustive_time_s(d, h); });
    report("Gemini APU", h, [&](int d) { return apu.exhaustive_time_s(d, h); });
    report("EPYC x64", h,
           [&](int d) { return cpu.exhaustive_time_s(d, h, 64); });
    report("3x A100 GPU", h, [&](int d) {
      return multi.time_for_seeds_s(
          static_cast<u64>(comb::exhaustive_search_count(d)), 3, h, false);
    });
    report("8-node EPYC cluster", h,
           [&](int d) { return cluster.exhaustive_time_s(d, h, 8); });
  }

  // --- run one real session at a host-scale planned distance ---------------
  std::printf("\nHost-scale demonstration (budget scaled down to 0.5 s):\n");
  EngineConfig ecfg;
  auto backend = make_backend("cpu", ecfg);
  // Plan against HOST reality: measure tiny searches and extrapolate via the
  // per-seed rate, here simply by probing modeled times of the CPU backend.
  const auto plan = sim::plan_injected_noise(
      [&](int d) {
        return backend->modeled_exhaustive_time_s(d, HashAlgo::kSha3_256);
      },
      20.0, 0.90, /*max_considered=*/8);
  const int host_d = std::min(plan.max_distance, 3);  // keep the demo quick

  puf::SramPufModel::Params params;
  params.num_addresses = 2;
  puf::SramPufModel device(params, 31337);
  EnrollmentDatabase db(crypto::Aes128::Key{0x33});
  Xoshiro256 rng(5);
  db.enroll(1, device, 60, 0.05, rng);
  RegistrationAuthority ra;
  CaConfig ca_cfg;
  ca_cfg.max_distance = host_d;
  CertificateAuthority ca(ca_cfg, std::move(db), std::move(backend), &ra);

  ClientConfig ccfg;
  ccfg.device_id = 1;
  ccfg.injected_distance = host_d;  // inject the planned amount of noise
  Client client(ccfg, &device, 77);
  const auto session = run_authentication(client, ca, ra);
  std::printf(
      "  planned d = %d (platform plan: %d); authenticated = %s at d = %d, "
      "search %.3f s\n",
      host_d, plan.max_distance, session.result.authenticated ? "yes" : "NO",
      session.result.found_distance, session.result.search_seconds);
  return session.result.authenticated ? 0 : 1;
}
