file(REMOVE_RECURSE
  "CMakeFiles/rbc_hash.dir/keccak.cpp.o"
  "CMakeFiles/rbc_hash.dir/keccak.cpp.o.d"
  "CMakeFiles/rbc_hash.dir/sha1.cpp.o"
  "CMakeFiles/rbc_hash.dir/sha1.cpp.o.d"
  "librbc_hash.a"
  "librbc_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
