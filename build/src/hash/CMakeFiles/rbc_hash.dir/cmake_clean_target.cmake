file(REMOVE_RECURSE
  "librbc_hash.a"
)
