# Empty compiler generated dependencies file for rbc_hash.
# This may be replaced when dependencies are built.
