
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/keccak.cpp" "src/hash/CMakeFiles/rbc_hash.dir/keccak.cpp.o" "gcc" "src/hash/CMakeFiles/rbc_hash.dir/keccak.cpp.o.d"
  "/root/repo/src/hash/sha1.cpp" "src/hash/CMakeFiles/rbc_hash.dir/sha1.cpp.o" "gcc" "src/hash/CMakeFiles/rbc_hash.dir/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/rbc_bits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
