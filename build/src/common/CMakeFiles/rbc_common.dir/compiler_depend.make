# Empty compiler generated dependencies file for rbc_common.
# This may be replaced when dependencies are built.
