file(REMOVE_RECURSE
  "CMakeFiles/rbc_common.dir/hex.cpp.o"
  "CMakeFiles/rbc_common.dir/hex.cpp.o.d"
  "CMakeFiles/rbc_common.dir/rng.cpp.o"
  "CMakeFiles/rbc_common.dir/rng.cpp.o.d"
  "librbc_common.a"
  "librbc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
