file(REMOVE_RECURSE
  "librbc_common.a"
)
