# Empty compiler generated dependencies file for rbc_crypto.
# This may be replaced when dependencies are built.
