file(REMOVE_RECURSE
  "librbc_crypto.a"
)
