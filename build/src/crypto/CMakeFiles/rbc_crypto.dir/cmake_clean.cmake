file(REMOVE_RECURSE
  "CMakeFiles/rbc_crypto.dir/aes128.cpp.o"
  "CMakeFiles/rbc_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/rbc_crypto.dir/pqc_keygen.cpp.o"
  "CMakeFiles/rbc_crypto.dir/pqc_keygen.cpp.o.d"
  "CMakeFiles/rbc_crypto.dir/ring.cpp.o"
  "CMakeFiles/rbc_crypto.dir/ring.cpp.o.d"
  "librbc_crypto.a"
  "librbc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
