
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combinatorics/algorithm515.cpp" "src/combinatorics/CMakeFiles/rbc_comb.dir/algorithm515.cpp.o" "gcc" "src/combinatorics/CMakeFiles/rbc_comb.dir/algorithm515.cpp.o.d"
  "/root/repo/src/combinatorics/binomial.cpp" "src/combinatorics/CMakeFiles/rbc_comb.dir/binomial.cpp.o" "gcc" "src/combinatorics/CMakeFiles/rbc_comb.dir/binomial.cpp.o.d"
  "/root/repo/src/combinatorics/chase382.cpp" "src/combinatorics/CMakeFiles/rbc_comb.dir/chase382.cpp.o" "gcc" "src/combinatorics/CMakeFiles/rbc_comb.dir/chase382.cpp.o.d"
  "/root/repo/src/combinatorics/combination.cpp" "src/combinatorics/CMakeFiles/rbc_comb.dir/combination.cpp.o" "gcc" "src/combinatorics/CMakeFiles/rbc_comb.dir/combination.cpp.o.d"
  "/root/repo/src/combinatorics/gosper.cpp" "src/combinatorics/CMakeFiles/rbc_comb.dir/gosper.cpp.o" "gcc" "src/combinatorics/CMakeFiles/rbc_comb.dir/gosper.cpp.o.d"
  "/root/repo/src/combinatorics/shell.cpp" "src/combinatorics/CMakeFiles/rbc_comb.dir/shell.cpp.o" "gcc" "src/combinatorics/CMakeFiles/rbc_comb.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/rbc_bits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
