file(REMOVE_RECURSE
  "CMakeFiles/rbc_comb.dir/algorithm515.cpp.o"
  "CMakeFiles/rbc_comb.dir/algorithm515.cpp.o.d"
  "CMakeFiles/rbc_comb.dir/binomial.cpp.o"
  "CMakeFiles/rbc_comb.dir/binomial.cpp.o.d"
  "CMakeFiles/rbc_comb.dir/chase382.cpp.o"
  "CMakeFiles/rbc_comb.dir/chase382.cpp.o.d"
  "CMakeFiles/rbc_comb.dir/combination.cpp.o"
  "CMakeFiles/rbc_comb.dir/combination.cpp.o.d"
  "CMakeFiles/rbc_comb.dir/gosper.cpp.o"
  "CMakeFiles/rbc_comb.dir/gosper.cpp.o.d"
  "CMakeFiles/rbc_comb.dir/shell.cpp.o"
  "CMakeFiles/rbc_comb.dir/shell.cpp.o.d"
  "librbc_comb.a"
  "librbc_comb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_comb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
