# Empty compiler generated dependencies file for rbc_comb.
# This may be replaced when dependencies are built.
