file(REMOVE_RECURSE
  "librbc_comb.a"
)
