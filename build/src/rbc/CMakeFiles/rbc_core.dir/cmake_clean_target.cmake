file(REMOVE_RECURSE
  "librbc_core.a"
)
