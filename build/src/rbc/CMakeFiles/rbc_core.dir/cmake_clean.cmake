file(REMOVE_RECURSE
  "CMakeFiles/rbc_core.dir/engines.cpp.o"
  "CMakeFiles/rbc_core.dir/engines.cpp.o.d"
  "CMakeFiles/rbc_core.dir/enrollment_db.cpp.o"
  "CMakeFiles/rbc_core.dir/enrollment_db.cpp.o.d"
  "CMakeFiles/rbc_core.dir/protocol.cpp.o"
  "CMakeFiles/rbc_core.dir/protocol.cpp.o.d"
  "CMakeFiles/rbc_core.dir/trial.cpp.o"
  "CMakeFiles/rbc_core.dir/trial.cpp.o.d"
  "librbc_core.a"
  "librbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
