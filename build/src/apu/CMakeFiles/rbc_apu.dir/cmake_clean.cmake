file(REMOVE_RECURSE
  "CMakeFiles/rbc_apu.dir/keccak_kernel.cpp.o"
  "CMakeFiles/rbc_apu.dir/keccak_kernel.cpp.o.d"
  "CMakeFiles/rbc_apu.dir/sha1_kernel.cpp.o"
  "CMakeFiles/rbc_apu.dir/sha1_kernel.cpp.o.d"
  "librbc_apu.a"
  "librbc_apu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
