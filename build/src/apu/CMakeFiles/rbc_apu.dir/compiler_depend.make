# Empty compiler generated dependencies file for rbc_apu.
# This may be replaced when dependencies are built.
