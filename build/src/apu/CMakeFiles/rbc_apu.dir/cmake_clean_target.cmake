file(REMOVE_RECURSE
  "librbc_apu.a"
)
