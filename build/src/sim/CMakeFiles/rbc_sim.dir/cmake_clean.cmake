file(REMOVE_RECURSE
  "CMakeFiles/rbc_sim.dir/apu_model.cpp.o"
  "CMakeFiles/rbc_sim.dir/apu_model.cpp.o.d"
  "CMakeFiles/rbc_sim.dir/cpu_model.cpp.o"
  "CMakeFiles/rbc_sim.dir/cpu_model.cpp.o.d"
  "CMakeFiles/rbc_sim.dir/energy.cpp.o"
  "CMakeFiles/rbc_sim.dir/energy.cpp.o.d"
  "CMakeFiles/rbc_sim.dir/gpu_model.cpp.o"
  "CMakeFiles/rbc_sim.dir/gpu_model.cpp.o.d"
  "CMakeFiles/rbc_sim.dir/multi_gpu.cpp.o"
  "CMakeFiles/rbc_sim.dir/multi_gpu.cpp.o.d"
  "CMakeFiles/rbc_sim.dir/probe.cpp.o"
  "CMakeFiles/rbc_sim.dir/probe.cpp.o.d"
  "librbc_sim.a"
  "librbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
