# Empty dependencies file for rbc_sim.
# This may be replaced when dependencies are built.
