file(REMOVE_RECURSE
  "librbc_sim.a"
)
