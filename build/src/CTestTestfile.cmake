# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bits")
subdirs("hash")
subdirs("combinatorics")
subdirs("puf")
subdirs("crypto")
subdirs("net")
subdirs("parallel")
subdirs("sim")
subdirs("rbc")
subdirs("apu")
subdirs("gpu")
subdirs("dist")
