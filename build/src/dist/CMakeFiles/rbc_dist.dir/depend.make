# Empty dependencies file for rbc_dist.
# This may be replaced when dependencies are built.
