file(REMOVE_RECURSE
  "CMakeFiles/rbc_dist.dir/comm.cpp.o"
  "CMakeFiles/rbc_dist.dir/comm.cpp.o.d"
  "librbc_dist.a"
  "librbc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
