file(REMOVE_RECURSE
  "librbc_dist.a"
)
