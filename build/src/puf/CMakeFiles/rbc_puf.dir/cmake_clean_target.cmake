file(REMOVE_RECURSE
  "librbc_puf.a"
)
