file(REMOVE_RECURSE
  "CMakeFiles/rbc_puf.dir/puf.cpp.o"
  "CMakeFiles/rbc_puf.dir/puf.cpp.o.d"
  "librbc_puf.a"
  "librbc_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
