# Empty compiler generated dependencies file for rbc_puf.
# This may be replaced when dependencies are built.
