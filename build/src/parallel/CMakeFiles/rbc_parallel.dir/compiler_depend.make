# Empty compiler generated dependencies file for rbc_parallel.
# This may be replaced when dependencies are built.
