file(REMOVE_RECURSE
  "CMakeFiles/rbc_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/rbc_parallel.dir/thread_pool.cpp.o.d"
  "librbc_parallel.a"
  "librbc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
