file(REMOVE_RECURSE
  "librbc_parallel.a"
)
