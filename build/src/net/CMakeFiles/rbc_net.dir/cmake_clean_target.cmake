file(REMOVE_RECURSE
  "librbc_net.a"
)
