file(REMOVE_RECURSE
  "CMakeFiles/rbc_net.dir/message.cpp.o"
  "CMakeFiles/rbc_net.dir/message.cpp.o.d"
  "librbc_net.a"
  "librbc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
