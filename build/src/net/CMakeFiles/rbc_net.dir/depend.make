# Empty dependencies file for rbc_net.
# This may be replaced when dependencies are built.
