file(REMOVE_RECURSE
  "CMakeFiles/rbc_gpu.dir/launch.cpp.o"
  "CMakeFiles/rbc_gpu.dir/launch.cpp.o.d"
  "librbc_gpu.a"
  "librbc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
