file(REMOVE_RECURSE
  "librbc_gpu.a"
)
