# Empty dependencies file for rbc_gpu.
# This may be replaced when dependencies are built.
