# Empty dependencies file for rbc_bits.
# This may be replaced when dependencies are built.
