file(REMOVE_RECURSE
  "CMakeFiles/rbc_bits.dir/seed256.cpp.o"
  "CMakeFiles/rbc_bits.dir/seed256.cpp.o.d"
  "librbc_bits.a"
  "librbc_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
