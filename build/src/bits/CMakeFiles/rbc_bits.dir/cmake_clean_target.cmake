file(REMOVE_RECURSE
  "librbc_bits.a"
)
