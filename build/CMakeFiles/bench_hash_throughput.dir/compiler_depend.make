# Empty compiler generated dependencies file for bench_hash_throughput.
# This may be replaced when dependencies are built.
