file(REMOVE_RECURSE
  "CMakeFiles/bench_hash_throughput.dir/bench/bench_hash_throughput.cpp.o"
  "CMakeFiles/bench_hash_throughput.dir/bench/bench_hash_throughput.cpp.o.d"
  "bench/bench_hash_throughput"
  "bench/bench_hash_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
