file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_prior_work.dir/bench/bench_table7_prior_work.cpp.o"
  "CMakeFiles/bench_table7_prior_work.dir/bench/bench_table7_prior_work.cpp.o.d"
  "bench/bench_table7_prior_work"
  "bench/bench_table7_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
