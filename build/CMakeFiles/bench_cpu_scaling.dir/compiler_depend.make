# Empty compiler generated dependencies file for bench_cpu_scaling.
# This may be replaced when dependencies are built.
