file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_scaling.dir/bench/bench_cpu_scaling.cpp.o"
  "CMakeFiles/bench_cpu_scaling.dir/bench/bench_cpu_scaling.cpp.o.d"
  "bench/bench_cpu_scaling"
  "bench/bench_cpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
