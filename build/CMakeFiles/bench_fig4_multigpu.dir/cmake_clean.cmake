file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_multigpu.dir/bench/bench_fig4_multigpu.cpp.o"
  "CMakeFiles/bench_fig4_multigpu.dir/bench/bench_fig4_multigpu.cpp.o.d"
  "bench/bench_fig4_multigpu"
  "bench/bench_fig4_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
