# Empty dependencies file for bench_ablation_tapki.
# This may be replaced when dependencies are built.
