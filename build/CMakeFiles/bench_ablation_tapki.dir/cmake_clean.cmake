file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tapki.dir/bench/bench_ablation_tapki.cpp.o"
  "CMakeFiles/bench_ablation_tapki.dir/bench/bench_ablation_tapki.cpp.o.d"
  "bench/bench_ablation_tapki"
  "bench/bench_ablation_tapki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tapki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
