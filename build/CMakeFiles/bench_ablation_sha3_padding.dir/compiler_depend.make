# Empty compiler generated dependencies file for bench_ablation_sha3_padding.
# This may be replaced when dependencies are built.
