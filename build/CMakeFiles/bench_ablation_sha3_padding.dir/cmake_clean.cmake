file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sha3_padding.dir/bench/bench_ablation_sha3_padding.cpp.o"
  "CMakeFiles/bench_ablation_sha3_padding.dir/bench/bench_ablation_sha3_padding.cpp.o.d"
  "bench/bench_ablation_sha3_padding"
  "bench/bench_ablation_sha3_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sha3_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
