file(REMOVE_RECURSE
  "CMakeFiles/bench_apu_bitslice.dir/bench/bench_apu_bitslice.cpp.o"
  "CMakeFiles/bench_apu_bitslice.dir/bench/bench_apu_bitslice.cpp.o.d"
  "bench/bench_apu_bitslice"
  "bench/bench_apu_bitslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apu_bitslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
