# Empty compiler generated dependencies file for bench_apu_bitslice.
# This may be replaced when dependencies are built.
