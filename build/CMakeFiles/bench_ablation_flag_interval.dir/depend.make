# Empty dependencies file for bench_ablation_flag_interval.
# This may be replaced when dependencies are built.
