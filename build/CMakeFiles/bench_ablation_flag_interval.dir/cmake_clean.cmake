file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flag_interval.dir/bench/bench_ablation_flag_interval.cpp.o"
  "CMakeFiles/bench_ablation_flag_interval.dir/bench/bench_ablation_flag_interval.cpp.o.d"
  "bench/bench_ablation_flag_interval"
  "bench/bench_ablation_flag_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flag_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
