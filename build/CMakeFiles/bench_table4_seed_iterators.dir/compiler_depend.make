# Empty compiler generated dependencies file for bench_table4_seed_iterators.
# This may be replaced when dependencies are built.
