file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_seed_iterators.dir/bench/bench_table4_seed_iterators.cpp.o"
  "CMakeFiles/bench_table4_seed_iterators.dir/bench/bench_table4_seed_iterators.cpp.o.d"
  "bench/bench_table4_seed_iterators"
  "bench/bench_table4_seed_iterators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_seed_iterators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
