file(REMOVE_RECURSE
  "CMakeFiles/bench_security_analysis.dir/bench/bench_security_analysis.cpp.o"
  "CMakeFiles/bench_security_analysis.dir/bench/bench_security_analysis.cpp.o.d"
  "bench/bench_security_analysis"
  "bench/bench_security_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
