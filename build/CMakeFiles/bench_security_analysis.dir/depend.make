# Empty dependencies file for bench_security_analysis.
# This may be replaced when dependencies are built.
