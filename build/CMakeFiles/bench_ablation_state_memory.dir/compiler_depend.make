# Empty compiler generated dependencies file for bench_ablation_state_memory.
# This may be replaced when dependencies are built.
