file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_state_memory.dir/bench/bench_ablation_state_memory.cpp.o"
  "CMakeFiles/bench_ablation_state_memory.dir/bench/bench_ablation_state_memory.cpp.o.d"
  "bench/bench_ablation_state_memory"
  "bench/bench_ablation_state_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_state_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
