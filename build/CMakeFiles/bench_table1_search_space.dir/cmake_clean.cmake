file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_search_space.dir/bench/bench_table1_search_space.cpp.o"
  "CMakeFiles/bench_table1_search_space.dir/bench/bench_table1_search_space.cpp.o.d"
  "bench/bench_table1_search_space"
  "bench/bench_table1_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
