file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_energy.dir/bench/bench_table6_energy.cpp.o"
  "CMakeFiles/bench_table6_energy.dir/bench/bench_table6_energy.cpp.o.d"
  "bench/bench_table6_energy"
  "bench/bench_table6_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
