# Empty dependencies file for bench_table6_energy.
# This may be replaced when dependencies are built.
