file(REMOVE_RECURSE
  "CMakeFiles/bench_ecc_comparison.dir/bench/bench_ecc_comparison.cpp.o"
  "CMakeFiles/bench_ecc_comparison.dir/bench/bench_ecc_comparison.cpp.o.d"
  "bench/bench_ecc_comparison"
  "bench/bench_ecc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
