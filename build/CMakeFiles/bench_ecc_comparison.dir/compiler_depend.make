# Empty compiler generated dependencies file for bench_ecc_comparison.
# This may be replaced when dependencies are built.
