file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_gpu_gridsearch.dir/bench/bench_fig3_gpu_gridsearch.cpp.o"
  "CMakeFiles/bench_fig3_gpu_gridsearch.dir/bench/bench_fig3_gpu_gridsearch.cpp.o.d"
  "bench/bench_fig3_gpu_gridsearch"
  "bench/bench_fig3_gpu_gridsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gpu_gridsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
