# Empty compiler generated dependencies file for bench_fig3_gpu_gridsearch.
# This may be replaced when dependencies are built.
