# Empty compiler generated dependencies file for puf_error_study.
# This may be replaced when dependencies are built.
