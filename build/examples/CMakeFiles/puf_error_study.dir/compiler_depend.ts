# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for puf_error_study.
