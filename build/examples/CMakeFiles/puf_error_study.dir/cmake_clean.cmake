file(REMOVE_RECURSE
  "CMakeFiles/puf_error_study.dir/puf_error_study.cpp.o"
  "CMakeFiles/puf_error_study.dir/puf_error_study.cpp.o.d"
  "puf_error_study"
  "puf_error_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/puf_error_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
