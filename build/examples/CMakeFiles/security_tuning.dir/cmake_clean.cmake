file(REMOVE_RECURSE
  "CMakeFiles/security_tuning.dir/security_tuning.cpp.o"
  "CMakeFiles/security_tuning.dir/security_tuning.cpp.o.d"
  "security_tuning"
  "security_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
