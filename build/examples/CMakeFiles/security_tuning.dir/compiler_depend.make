# Empty compiler generated dependencies file for security_tuning.
# This may be replaced when dependencies are built.
