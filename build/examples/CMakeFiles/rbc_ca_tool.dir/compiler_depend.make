# Empty compiler generated dependencies file for rbc_ca_tool.
# This may be replaced when dependencies are built.
