file(REMOVE_RECURSE
  "CMakeFiles/rbc_ca_tool.dir/rbc_ca_tool.cpp.o"
  "CMakeFiles/rbc_ca_tool.dir/rbc_ca_tool.cpp.o.d"
  "rbc_ca_tool"
  "rbc_ca_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_ca_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
