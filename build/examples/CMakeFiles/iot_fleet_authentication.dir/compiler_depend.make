# Empty compiler generated dependencies file for iot_fleet_authentication.
# This may be replaced when dependencies are built.
