file(REMOVE_RECURSE
  "CMakeFiles/iot_fleet_authentication.dir/iot_fleet_authentication.cpp.o"
  "CMakeFiles/iot_fleet_authentication.dir/iot_fleet_authentication.cpp.o.d"
  "iot_fleet_authentication"
  "iot_fleet_authentication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_fleet_authentication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
