file(REMOVE_RECURSE
  "CMakeFiles/accelerator_comparison.dir/accelerator_comparison.cpp.o"
  "CMakeFiles/accelerator_comparison.dir/accelerator_comparison.cpp.o.d"
  "accelerator_comparison"
  "accelerator_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
