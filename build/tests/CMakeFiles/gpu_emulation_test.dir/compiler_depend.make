# Empty compiler generated dependencies file for gpu_emulation_test.
# This may be replaced when dependencies are built.
