file(REMOVE_RECURSE
  "CMakeFiles/gpu_emulation_test.dir/gpu_emulation_test.cpp.o"
  "CMakeFiles/gpu_emulation_test.dir/gpu_emulation_test.cpp.o.d"
  "gpu_emulation_test"
  "gpu_emulation_test.pdb"
  "gpu_emulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_emulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
