# Empty dependencies file for chase382_test.
# This may be replaced when dependencies are built.
