file(REMOVE_RECURSE
  "CMakeFiles/chase382_test.dir/chase382_test.cpp.o"
  "CMakeFiles/chase382_test.dir/chase382_test.cpp.o.d"
  "chase382_test"
  "chase382_test.pdb"
  "chase382_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase382_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
