# Empty dependencies file for gosper_test.
# This may be replaced when dependencies are built.
