file(REMOVE_RECURSE
  "CMakeFiles/gosper_test.dir/gosper_test.cpp.o"
  "CMakeFiles/gosper_test.dir/gosper_test.cpp.o.d"
  "gosper_test"
  "gosper_test.pdb"
  "gosper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gosper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
