# Empty dependencies file for ball_test.
# This may be replaced when dependencies are built.
