# Empty compiler generated dependencies file for fuzzy_extractor_test.
# This may be replaced when dependencies are built.
