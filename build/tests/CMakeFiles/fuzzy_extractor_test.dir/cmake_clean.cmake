file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_extractor_test.dir/fuzzy_extractor_test.cpp.o"
  "CMakeFiles/fuzzy_extractor_test.dir/fuzzy_extractor_test.cpp.o.d"
  "fuzzy_extractor_test"
  "fuzzy_extractor_test.pdb"
  "fuzzy_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
