file(REMOVE_RECURSE
  "CMakeFiles/enrollment_db_test.dir/enrollment_db_test.cpp.o"
  "CMakeFiles/enrollment_db_test.dir/enrollment_db_test.cpp.o.d"
  "enrollment_db_test"
  "enrollment_db_test.pdb"
  "enrollment_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enrollment_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
