# Empty dependencies file for enrollment_db_test.
# This may be replaced when dependencies are built.
