# Empty compiler generated dependencies file for keccak_test.
# This may be replaced when dependencies are built.
