file(REMOVE_RECURSE
  "CMakeFiles/keccak_test.dir/keccak_test.cpp.o"
  "CMakeFiles/keccak_test.dir/keccak_test.cpp.o.d"
  "keccak_test"
  "keccak_test.pdb"
  "keccak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keccak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
