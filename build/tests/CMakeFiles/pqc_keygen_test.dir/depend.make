# Empty dependencies file for pqc_keygen_test.
# This may be replaced when dependencies are built.
