# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pqc_keygen_test.
