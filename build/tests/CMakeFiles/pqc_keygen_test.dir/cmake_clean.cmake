file(REMOVE_RECURSE
  "CMakeFiles/pqc_keygen_test.dir/pqc_keygen_test.cpp.o"
  "CMakeFiles/pqc_keygen_test.dir/pqc_keygen_test.cpp.o.d"
  "pqc_keygen_test"
  "pqc_keygen_test.pdb"
  "pqc_keygen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqc_keygen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
