# Empty dependencies file for seed256_test.
# This may be replaced when dependencies are built.
