file(REMOVE_RECURSE
  "CMakeFiles/seed256_test.dir/seed256_test.cpp.o"
  "CMakeFiles/seed256_test.dir/seed256_test.cpp.o.d"
  "seed256_test"
  "seed256_test.pdb"
  "seed256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
