file(REMOVE_RECURSE
  "CMakeFiles/algorithm515_test.dir/algorithm515_test.cpp.o"
  "CMakeFiles/algorithm515_test.dir/algorithm515_test.cpp.o.d"
  "algorithm515_test"
  "algorithm515_test.pdb"
  "algorithm515_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm515_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
