# Empty compiler generated dependencies file for algorithm515_test.
# This may be replaced when dependencies are built.
