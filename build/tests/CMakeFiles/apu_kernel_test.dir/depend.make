# Empty dependencies file for apu_kernel_test.
# This may be replaced when dependencies are built.
