file(REMOVE_RECURSE
  "CMakeFiles/apu_kernel_test.dir/apu_kernel_test.cpp.o"
  "CMakeFiles/apu_kernel_test.dir/apu_kernel_test.cpp.o.d"
  "apu_kernel_test"
  "apu_kernel_test.pdb"
  "apu_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apu_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
