file(REMOVE_RECURSE
  "CMakeFiles/binomial_test.dir/binomial_test.cpp.o"
  "CMakeFiles/binomial_test.dir/binomial_test.cpp.o.d"
  "binomial_test"
  "binomial_test.pdb"
  "binomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
