file(REMOVE_RECURSE
  "CMakeFiles/iterator_equivalence_test.dir/iterator_equivalence_test.cpp.o"
  "CMakeFiles/iterator_equivalence_test.dir/iterator_equivalence_test.cpp.o.d"
  "iterator_equivalence_test"
  "iterator_equivalence_test.pdb"
  "iterator_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterator_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
