# Empty compiler generated dependencies file for apu_search_test.
# This may be replaced when dependencies are built.
