file(REMOVE_RECURSE
  "CMakeFiles/apu_search_test.dir/apu_search_test.cpp.o"
  "CMakeFiles/apu_search_test.dir/apu_search_test.cpp.o.d"
  "apu_search_test"
  "apu_search_test.pdb"
  "apu_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apu_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
