file(REMOVE_RECURSE
  "CMakeFiles/puf_test.dir/puf_test.cpp.o"
  "CMakeFiles/puf_test.dir/puf_test.cpp.o.d"
  "puf_test"
  "puf_test.pdb"
  "puf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/puf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
