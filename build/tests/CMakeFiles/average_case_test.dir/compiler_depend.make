# Empty compiler generated dependencies file for average_case_test.
# This may be replaced when dependencies are built.
