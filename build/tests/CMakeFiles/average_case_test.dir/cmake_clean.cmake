file(REMOVE_RECURSE
  "CMakeFiles/average_case_test.dir/average_case_test.cpp.o"
  "CMakeFiles/average_case_test.dir/average_case_test.cpp.o.d"
  "average_case_test"
  "average_case_test.pdb"
  "average_case_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/average_case_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
